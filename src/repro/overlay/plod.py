"""PLOD: centralized power-law out-degree topology generator.

Palmer & Steffan (GLOBECOM 2000).  The paper uses PLOD with ``alpha = 1.8``
as the *random power-law overlay* baseline in every comparison (Figures
8, 10-17).  PLOD assigns each node a degree credit drawn from a power law
(``credit_i = round(beta * x_i**-alpha)`` with ``x_i ~ Unif[1, n]``) and
then repeatedly wires random node pairs that both hold remaining credits.

The generated graph may be disconnected; like most users of PLOD we patch
connectivity afterwards by linking each smaller component to the giant one
through random representatives, which perturbs the degree distribution
negligibly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import OverlayError
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource
from .graph import OverlayNetwork


def generate_plod_overlay(
    peers: Sequence[PeerInfo],
    rng: RandomSource,
    alpha: float = 1.8,
    mean_degree: float = 6.0,
    max_degree: int | None = None,
    max_wiring_attempts_factor: int = 20,
) -> OverlayNetwork:
    """Build a PLOD power-law overlay over ``peers``.

    ``beta`` is calibrated so the total degree credit matches
    ``mean_degree * len(peers)``; ``alpha = 1.8`` reproduces Figure 8.
    Per-node credits are capped at ``max_degree`` (default ``3 * sqrt(n)``,
    matching the tail extent in the paper's Figure 8) — without a cap the
    hub node absorbs most credits and the wiring phase stalls.
    """
    n = len(peers)
    if n < 2:
        raise OverlayError("PLOD needs at least two peers")
    if alpha <= 0.0:
        raise OverlayError("alpha must be positive")
    if mean_degree <= 0.0:
        raise OverlayError("mean_degree must be positive")
    if max_degree is None:
        max_degree = min(n - 1, max(8, int(3.0 * np.sqrt(n))))
    if max_degree < 1:
        raise OverlayError("max_degree must be >= 1")

    x = rng.integers(1, n + 1, size=n).astype(float)
    raw = x ** (-alpha)
    credits = _calibrated_credits(raw, mean_degree * n, max_degree)

    overlay = OverlayNetwork()
    for info in peers:
        overlay.add_peer(info)
    ids = [info.peer_id for info in peers]

    # Random wiring between credit holders.
    holders = np.flatnonzero(credits > 0)
    attempts = 0
    max_attempts = max_wiring_attempts_factor * int(credits.sum())
    while len(holders) > 1 and attempts < max_attempts:
        attempts += 1
        i, j = rng.choice(holders, size=2, replace=False)
        i, j = int(i), int(j)
        if overlay.add_link(ids[i], ids[j]):
            credits[i] -= 1
            credits[j] -= 1
            if credits[i] <= 0 or credits[j] <= 0:
                holders = np.flatnonzero(credits > 0)

    _patch_connectivity(overlay, rng)
    return overlay


def _calibrated_credits(raw: np.ndarray, target_total: float,
                        max_degree: int) -> np.ndarray:
    """Scale power-law draws so total degree credit hits ``target_total``.

    Credits are integers clipped to ``[1, max_degree]``, which distorts a
    naive scaling of the raw draws; a short bisection on the multiplier
    lands the realised sum within a few percent of the target.
    """
    cap = float(max_degree)
    ceiling = cap * len(raw)
    target_total = min(target_total, ceiling)
    low, high = 1e-9, 1.0
    while _credit_sum(raw, high, cap) < target_total and high < 1e12:
        high *= 2.0
    for _ in range(60):
        mid = 0.5 * (low + high)
        if _credit_sum(raw, mid, cap) < target_total:
            low = mid
        else:
            high = mid
    return np.clip(np.rint(high * raw), 1, cap).astype(np.int64)


def _credit_sum(raw: np.ndarray, beta: float, cap: float) -> float:
    return float(np.clip(np.rint(beta * raw), 1, cap).sum())


def _patch_connectivity(overlay: OverlayNetwork, rng: RandomSource) -> None:
    """Join all components to the largest one with single random links."""
    components = _components(overlay)
    if len(components) <= 1:
        return
    components.sort(key=len, reverse=True)
    giant = components[0]
    for component in components[1:]:
        a = component[int(rng.integers(len(component)))]
        b = giant[int(rng.integers(len(giant)))]
        overlay.add_link(a, b)
        giant = giant + component


def _components(overlay: OverlayNetwork) -> list[list[int]]:
    seen: set[int] = set()
    components = []
    for start in overlay.peer_ids():
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        members = []
        while stack:
            node = stack.pop()
            members.append(node)
            for neighbor in overlay.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(members)
    return components

"""Epoch-based neighborhood link maintenance (Section 3.3).

Peers exchange heartbeat messages carrying their identifier quadruplet
every heartbeat interval.  A neighbor that misses two consecutive
heartbeats is declared failed; a gracefully departing peer sends explicit
departure messages.  Failures are recorded during the epoch, and at each
epoch end the peer repairs its neighbor list through the same utility-
driven candidate selection used at bootstrap.  The epoch length adapts to
the observed churn so the overlay "agilely adapts to the current churn
pattern": heavy churn shortens the epoch (faster repair), calm periods
lengthen it (less maintenance traffic), within configured bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import OverlayConfig
from ..errors import OverlayError
from ..obs.registry import Registry
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    Tracer,
    get_default_tracer,
)
from ..sim.engine import Simulator
from ..sim.random import RandomSource
from .bootstrap import UtilityBootstrap
from .graph import OverlayNetwork
from .hostcache import HostCacheServer
from .messages import MessageKind, MessageStats


@dataclass
class _PeerState:
    """Liveness bookkeeping for one maintained peer."""

    alive: bool = True
    missed: dict[int, int] = field(default_factory=dict)
    failures_this_epoch: int = 0
    epoch_ms: float = 0.0
    #: Armed timer handles, cancelled when the peer crashes, departs or
    #: is purged — a dead peer must never fire another maintenance
    #: event (its timers used to linger as scheduled no-ops).
    heartbeat_timer: object | None = None
    epoch_timer: object | None = None

    def cancel_timers(self) -> None:
        """Disarm both timer chains (idempotent)."""
        if self.heartbeat_timer is not None:
            self.heartbeat_timer.cancel()
            self.heartbeat_timer = None
        if self.epoch_timer is not None:
            self.epoch_timer.cancel()
            self.epoch_timer = None


class MaintenanceDaemon:
    """Runs heartbeats, failure detection and epoch repair on a simulator."""

    def __init__(
        self,
        simulator: Simulator,
        overlay: OverlayNetwork,
        host_cache: HostCacheServer,
        bootstrap: UtilityBootstrap,
        rng: RandomSource,
        config: OverlayConfig | None = None,
        stats: MessageStats | None = None,
        registry: Registry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        # Deferred import: the runtime package reaches back into the
        # protocol modules at load, so the seam is bound lazily here.
        from ..runtime.transport import SimTimers

        self.simulator = simulator
        #: Timer/clock seam.  All maintenance scheduling goes through
        #: this adapter (pure pass-through over the simulator), so the
        #: daemon can later ride an asyncio clock unchanged.
        self.timers = SimTimers(simulator)
        self.overlay = overlay
        self.host_cache = host_cache
        self.bootstrap = bootstrap
        self.rng = rng
        self.config = config or OverlayConfig()
        self.stats = stats or MessageStats()
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self._states: dict[int, _PeerState] = {}
        self.detected_failures: list[tuple[float, int, int]] = []
        self.repairs: list[tuple[float, int, int]] = []
        self._c_heartbeats = self.registry.counter("maintenance.heartbeats")
        self._c_replies = self.registry.counter(
            "maintenance.heartbeat_replies")
        self._c_failures = self.registry.counter(
            "maintenance.failures_detected")
        self._c_repaired = self.registry.counter(
            "maintenance.links_repaired")
        self._c_departures = self.registry.counter("maintenance.departures")
        self._g_alive = self.registry.gauge("maintenance.alive_peers")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def activate(self, peer_id: int) -> None:
        """Start maintaining ``peer_id`` (must already be in the overlay)."""
        if peer_id not in self.overlay:
            raise OverlayError(f"cannot maintain unknown peer {peer_id}")
        if peer_id in self._states:
            raise OverlayError(f"peer {peer_id} is already maintained")
        state = _PeerState(epoch_ms=self.config.epoch_ms)
        self._states[peer_id] = state
        self._g_alive.inc()
        jitter = float(self.rng.uniform(0, self.config.heartbeat_interval_ms))
        state.heartbeat_timer = self.timers.arm_timer(
            jitter, lambda: self._heartbeat_round(peer_id))
        state.epoch_timer = self.timers.arm_timer(
            state.epoch_ms, lambda: self._epoch_end(peer_id))

    def is_alive(self, peer_id: int) -> bool:
        """True if the peer is maintained and not crashed/departed."""
        state = self._states.get(peer_id)
        return state is not None and state.alive

    def alive_peers(self) -> list[int]:
        """All currently live maintained peers."""
        return [p for p, s in self._states.items() if s.alive]

    def maintained_peers(self) -> list[int]:
        """Every peer with maintenance state, dead or alive."""
        return list(self._states)

    def missed_heartbeats(self, peer_id: int) -> dict[int, int]:
        """``{neighbor: consecutive missed heartbeats}`` as seen by
        ``peer_id`` (read-only copy; invariant checkers use this to
        audit view consistency after partitions heal)."""
        state = self._states.get(peer_id)
        if state is None:
            raise OverlayError(f"peer {peer_id} is not maintained")
        return dict(state.missed)

    def crash(self, peer_id: int) -> None:
        """Kill a peer silently; neighbors must detect it via heartbeats."""
        state = self._states.get(peer_id)
        if state is None or not state.alive:
            return
        state.alive = False
        state.cancel_timers()
        self._g_alive.dec()
        self.host_cache.unregister(peer_id)

    def depart(self, peer_id: int) -> None:
        """Gracefully remove a peer: departure messages, immediate cleanup."""
        state = self._states.get(peer_id)
        if state is None or not state.alive:
            return
        state.alive = False
        state.cancel_timers()
        self._g_alive.dec()
        self.host_cache.unregister(peer_id)
        neighbors = self.overlay.neighbors(peer_id)
        self.stats.record(MessageKind.DEPARTURE, len(neighbors))
        self._c_departures.inc(len(neighbors))
        self.overlay.remove_peer(peer_id)
        del self._states[peer_id]

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _heartbeat_round(self, peer_id: int) -> None:
        state = self._states.get(peer_id)
        if state is None or not state.alive:
            return
        state.heartbeat_timer = None
        if peer_id not in self.overlay:
            return
        tracer = (self.tracer if self.tracer is not None
                  else get_default_tracer())
        tracing = tracer is not None and tracer.spans
        if tracing:
            self._heartbeat_scan_traced(peer_id, state, tracer)
        else:
            self._heartbeat_scan(peer_id, state)
        if state.alive:
            state.heartbeat_timer = self.timers.arm_timer(
                self.config.heartbeat_interval_ms,
                lambda: self._heartbeat_round(peer_id))

    def _heartbeat_scan(self, peer_id: int, state: _PeerState) -> None:
        """Bulk liveness scan — the untraced (default) fast path.

        Observable behavior is identical to the traced loop: the same
        miss counters move, failures are declared in the same neighbor
        order, and the aggregate message statistics end at the same
        values.  The per-neighbor Python work shrinks to one dict
        lookup; message counts are recorded in batch, which is what
        makes whole-overlay heartbeat rounds affordable at scale.
        """
        states = self._states
        missed = state.missed
        silent: list[int] = []
        replies = 0
        for neighbor in self.overlay.iter_neighbors(peer_id):
            neighbor_state = states.get(neighbor)
            if neighbor_state is not None and neighbor_state.alive:
                replies += 1
                if missed:
                    missed.pop(neighbor, None)
            else:
                silent.append(neighbor)
        total = replies + len(silent)
        self.stats.record(MessageKind.HEARTBEAT, total)
        self._c_heartbeats.inc(total)
        self.stats.record(MessageKind.HEARTBEAT_REPLY, replies)
        self._c_replies.inc(replies)
        threshold = self.config.missed_heartbeats_for_failure
        for neighbor in silent:
            count = missed.get(neighbor, 0) + 1
            missed[neighbor] = count
            if count >= threshold:
                self._declare_failed(peer_id, neighbor, state)

    def _heartbeat_scan_traced(self, peer_id: int, state: _PeerState,
                               tracer: Tracer) -> None:
        now = self.simulator.now
        # One span tree per round: a probe span per neighbor, closed by
        # the reply when the neighbor is alive and left open (unreplied)
        # when the heartbeat went unanswered.
        root = tracer.root_span(at_ms=now, kind="heartbeat")
        threshold = self.config.missed_heartbeats_for_failure
        for neighbor in self.overlay.neighbors(peer_id):
            self.stats.record(MessageKind.HEARTBEAT)
            self._c_heartbeats.inc()
            probe = tracer.child_span(root)
            tracer.record(now, KIND_SEND, a=peer_id, b=neighbor,
                          detail=MessageKind.HEARTBEAT.value,
                          span=probe)
            neighbor_state = self._states.get(neighbor)
            if neighbor_state is not None and neighbor_state.alive:
                self.stats.record(MessageKind.HEARTBEAT_REPLY)
                self._c_replies.inc()
                tracer.record(now, KIND_DELIVER, a=neighbor,
                              b=peer_id,
                              detail=MessageKind.HEARTBEAT_REPLY.value,
                              span=probe)
                state.missed.pop(neighbor, None)
                continue
            missed = state.missed.get(neighbor, 0) + 1
            state.missed[neighbor] = missed
            if missed >= threshold:
                self._declare_failed(peer_id, neighbor, state)

    def _declare_failed(self, peer_id: int, neighbor: int,
                        state: _PeerState) -> None:
        state.missed.pop(neighbor, None)
        if neighbor in self.overlay and self.overlay.has_link(
                peer_id, neighbor):
            self.overlay.remove_link(peer_id, neighbor)
        state.failures_this_epoch += 1
        self._c_failures.inc()
        self.detected_failures.append(
            (self.timers.now(), peer_id, neighbor))
        # Purge the dead peer's vertex once everyone has dropped it.
        if neighbor in self.overlay and self.overlay.degree(neighbor) == 0:
            dead_state = self._states.get(neighbor)
            if dead_state is not None and not dead_state.alive:
                dead_state.cancel_timers()
                self.overlay.remove_peer(neighbor)
                del self._states[neighbor]

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    def _epoch_end(self, peer_id: int) -> None:
        state = self._states.get(peer_id)
        if state is None or not state.alive:
            return
        state.epoch_timer = None
        if peer_id not in self.overlay:
            return
        info = self.overlay.peer(peer_id)
        target = self.config.target_degree(info.capacity)
        deficit = target - self.overlay.degree(peer_id)
        if deficit > 0:
            added = self.bootstrap.acquire_neighbors(info, deficit)
            if added:
                self._c_repaired.inc(len(added))
                self.repairs.append(
                    (self.timers.now(), peer_id, len(added)))
        state.epoch_ms = self._adapted_epoch(state)
        state.failures_this_epoch = 0
        state.epoch_timer = self.timers.arm_timer(
            state.epoch_ms, lambda: self._epoch_end(peer_id))

    def _adapted_epoch(self, state: _PeerState) -> float:
        """Shrink the epoch under churn, grow it when the neighborhood is
        calm, clamped to the configured range."""
        cfg = self.config
        if state.failures_this_epoch == 0:
            proposed = state.epoch_ms * 1.25
        else:
            proposed = state.epoch_ms / (1.0 + state.failures_this_epoch)
        return min(max(proposed, cfg.min_epoch_ms), cfg.max_epoch_ms)

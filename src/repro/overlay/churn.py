"""Network churn: peer arrivals, lifetimes, departures and failures.

The paper's experiments drive joins with exponential inter-arrival times
(``Expo(1s)``); churn resilience comes from heartbeat maintenance.  This
module provides a churn *process* that schedules joins, graceful
departures and silent crashes on the event simulator, so maintenance and
group-communication behaviour under membership dynamics can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..config import ConfigurationError
from ..coords.base import CoordinateSpace
from ..coords.gnp import GNPSystem
from ..network.underlay import UnderlayNetwork
from ..obs.registry import Registry
from ..peers.capacity import CapacityDistribution, PAPER_CAPACITY_DISTRIBUTION
from ..peers.peer import PeerInfo
from ..sim.engine import Simulator
from ..sim.random import RandomSource
from .bootstrap import UtilityBootstrap
from .maintenance import MaintenanceDaemon


@dataclass(frozen=True)
class ChurnConfig:
    """Arrival/lifetime parameters of the churn process."""

    join_interarrival_ms: float = 1_000.0
    mean_lifetime_ms: float = 600_000.0
    crash_fraction: float = 0.5
    max_joins: int = 1_000

    def __post_init__(self) -> None:
        if self.join_interarrival_ms <= 0.0:
            raise ConfigurationError("join_interarrival_ms must be positive")
        if self.mean_lifetime_ms <= 0.0:
            raise ConfigurationError("mean_lifetime_ms must be positive")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ConfigurationError("crash_fraction must be a probability")
        if self.max_joins < 1:
            raise ConfigurationError("max_joins must be >= 1")


class ChurnProcess:
    """Schedules joins/leaves/crashes against a maintained overlay."""

    def __init__(
        self,
        simulator: Simulator,
        underlay: UnderlayNetwork,
        gnp: GNPSystem,
        space: CoordinateSpace,
        bootstrap: UtilityBootstrap,
        maintenance: MaintenanceDaemon,
        rng: RandomSource,
        config: ChurnConfig | None = None,
        capacities: CapacityDistribution = PAPER_CAPACITY_DISTRIBUTION,
        next_peer_id: int = 0,
        on_join: Callable[[PeerInfo], None] | None = None,
        registry: Registry | None = None,
    ) -> None:
        self.simulator = simulator
        self.underlay = underlay
        self.gnp = gnp
        self.space = space
        self.bootstrap = bootstrap
        self.maintenance = maintenance
        self.rng = rng
        self.config = config or ChurnConfig()
        self.capacities = capacities
        self._next_peer_id = next_peer_id
        self._joins_scheduled = 0
        self._on_join = on_join
        self.registry = registry if registry is not None else Registry()
        self._c_joins = self.registry.counter("churn.joins")
        self._c_departures = self.registry.counter("churn.departures")
        self._c_crashes = self.registry.counter("churn.crashes")
        self._c_forced = self.registry.counter("churn.forced_crashes")
        self.joined: list[int] = []
        self.departed: list[int] = []
        self.crashed: list[int] = []

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next_join()

    def apply_fault_plan(self, plan) -> int:
        """Schedule a :class:`~repro.faults.plan.FaultPlan`'s crash
        events as deterministic, named-peer crashes.

        Unlike the lifetime-driven stochastic crashes, these target
        specific peers at specific virtual times — the knob adversarial
        schedules use to take down exactly the forwarders they mean to.
        Restart events are ignored at this layer (a restarted peer
        rejoins through the ordinary bootstrap path).  Returns the
        number of crashes scheduled.
        """
        scheduled = 0
        for crash in plan.crashes:
            if crash.at_ms < self.simulator.now:
                continue
            self.simulator.schedule_at(
                crash.at_ms,
                lambda peer=crash.peer_id: self._forced_crash(peer))
            scheduled += 1
        return scheduled

    def _forced_crash(self, peer_id: int) -> None:
        if not self.maintenance.is_alive(peer_id):
            return
        self.maintenance.crash(peer_id)
        self.crashed.append(peer_id)
        self._c_forced.inc()
        self._c_crashes.inc()

    # ------------------------------------------------------------------
    def _schedule_next_join(self) -> None:
        if self._joins_scheduled >= self.config.max_joins:
            return
        self._joins_scheduled += 1
        gap = float(self.rng.exponential(self.config.join_interarrival_ms))
        self.simulator.schedule(gap, self._do_join)

    def _do_join(self) -> None:
        peer_id = self._next_peer_id
        self._next_peer_id += 1
        self.underlay.attach_peer(peer_id, self.rng)
        coordinate = self.gnp.embed_peer(peer_id, self.space, self.rng)
        info = PeerInfo(
            peer_id=peer_id,
            capacity=self.capacities.sample_one(self.rng),
            coordinate=coordinate,
        )
        self.bootstrap.join(info)
        self.maintenance.activate(peer_id)
        self.joined.append(peer_id)
        self._c_joins.inc()
        if self._on_join is not None:
            self._on_join(info)
        lifetime = float(self.rng.exponential(self.config.mean_lifetime_ms))
        self.simulator.schedule(lifetime, lambda: self._do_leave(peer_id))
        self._schedule_next_join()

    def _do_leave(self, peer_id: int) -> None:
        if not self.maintenance.is_alive(peer_id):
            return
        if self.rng.random() < self.config.crash_fraction:
            self.maintenance.crash(peer_id)
            self.crashed.append(peer_id)
            self._c_crashes.inc()
        else:
            self.maintenance.depart(peer_id)
            self.departed.append(peer_id)
            self._c_departures.inc()

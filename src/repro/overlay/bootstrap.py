"""Utility-aware overlay construction protocol (Section 3.3).

A joining peer ``p_i``:

1. queries the host cache and receives the bootstrap list
   ``B_i = BD_i U BR_i`` (closest half + random half);
2. sends a probe ``Mprob`` to every peer in ``B_i``; each reply
   ``Mprob_resp`` carries the responder's neighbor list;
3. compiles the candidate list ``LC_i`` from the replies.  Each candidate's
   *occurrence frequency* ``f_i(j)`` samples its degree, substituting for
   capacity in Equation 6; distances come from network coordinates;
4. estimates its resource level ``r_i`` from the sampled capacities and
   draws neighbors without replacement with probability proportional to
   the selection preference, until its capacity-derived target degree is
   reached;
5. asks each selected neighbor for a backward connection, accepted with
   probability ``PB`` (Section 3.3) or, failing that, with the fallback
   probability ``p_b = 0.5``.

Modelling note: the paper distinguishes forwarding (out) edges from back
links (in edges).  We model the overlay as an undirected graph, and fold
the back-link rule into link *establishment*: a selected link materialises
with probability ``PB + (1 - PB) * p_b``; a refused candidate is skipped
and the joiner moves to the next-ranked one.  The PB rule therefore shapes
the topology exactly as intended — powerful peers preferentially
inter-connect, weak peers attach nearby — while keeping a single
adjacency.  Refusals and their message costs are still accounted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..config import OverlayConfig, UtilityConfig
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource, weighted_sample_without_replacement
from ..utility.backlink import back_link_acceptance_probability
from ..utility.preference import selection_preference
from ..utility.resource_level import estimate_resource_level
from .graph import OverlayNetwork
from .hostcache import HostCacheServer
from .messages import MessageKind, MessageStats


@dataclass(frozen=True)
class JoinResult:
    """Outcome of one utility-aware join."""

    peer_id: int
    connected: tuple[int, ...]
    refused: tuple[int, ...]
    candidates_seen: int
    resource_level: float
    target_degree: int

    @property
    def degree(self) -> int:
        """Number of links established by the join."""
        return len(self.connected)


class UtilityBootstrap:
    """Executes utility-aware joins against an overlay under construction."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        host_cache: HostCacheServer,
        rng: RandomSource,
        overlay_config: OverlayConfig | None = None,
        utility_config: UtilityConfig | None = None,
        stats: MessageStats | None = None,
    ) -> None:
        self.overlay = overlay
        self.host_cache = host_cache
        self.rng = rng
        self.overlay_config = overlay_config or OverlayConfig()
        self.utility_config = utility_config or UtilityConfig()
        self.stats = stats or MessageStats()

    # ------------------------------------------------------------------
    def join(self, info: PeerInfo) -> JoinResult:
        """Run the full join protocol for ``info`` and wire it in."""
        cfg = self.overlay_config
        self.overlay.add_peer(info)

        self.stats.record(MessageKind.HOSTCACHE_QUERY)
        bootstrap_list = self.host_cache.bootstrap_candidates(
            info, self.rng, cfg.bootstrap_list_size)
        self.stats.record(MessageKind.HOSTCACHE_REPLY)
        self.host_cache.register(info)

        if not bootstrap_list:
            # First peer in the network: nothing to connect to yet.
            return JoinResult(info.peer_id, (), (), 0, 0.5, 0)

        candidates, frequencies = self._probe(info, bootstrap_list)
        resource_level = self._estimate_resource_level(info, candidates)
        target = cfg.target_degree(info.capacity)
        connected, refused = self._select_and_connect(
            info, candidates, frequencies, resource_level, target)
        return JoinResult(
            peer_id=info.peer_id,
            connected=tuple(connected),
            refused=tuple(refused),
            candidates_seen=len(candidates),
            resource_level=resource_level,
            target_degree=target,
        )

    def acquire_neighbors(self, info: PeerInfo, needed: int) -> list[int]:
        """Connect an existing peer to up to ``needed`` new neighbors.

        Used by epoch-based maintenance to repair links lost to churn.
        Runs the same cache-query / probe / utility-selection pipeline as
        a fresh join, skipping peers already adjacent to ``info``.
        """
        if needed <= 0:
            return []
        self.stats.record(MessageKind.HOSTCACHE_QUERY)
        bootstrap_list = self.host_cache.bootstrap_candidates(
            info, self.rng, self.overlay_config.bootstrap_list_size)
        self.stats.record(MessageKind.HOSTCACHE_REPLY)
        if not bootstrap_list:
            return []
        candidates, frequencies = self._probe(info, bootstrap_list)
        fresh = [(c, f) for c, f in zip(candidates, frequencies)
                 if c.peer_id in self.overlay
                 and not self.overlay.has_link(info.peer_id, c.peer_id)]
        if not fresh:
            return []
        candidates = [c for c, _ in fresh]
        frequencies = np.asarray([f for _, f in fresh], dtype=float)
        resource_level = self._estimate_resource_level(info, candidates)
        connected, _ = self._select_and_connect(
            info, candidates, frequencies, resource_level, needed)
        return connected

    # ------------------------------------------------------------------
    def _probe(
        self, info: PeerInfo, bootstrap_list: list[PeerInfo]
    ) -> tuple[list[PeerInfo], np.ndarray]:
        """Probe bootstrap peers; return candidates and their frequencies.

        Bootstrap peers themselves join the candidate list with one base
        occurrence — they are directly known to the joiner — plus any
        appearances in other peers' neighbor lists.
        """
        occurrences: Counter[int] = Counter()
        known: dict[int, PeerInfo] = {}
        for bootstrap_peer in bootstrap_list:
            self.stats.record(MessageKind.PROBE)
            self.stats.record(MessageKind.PROBE_RESPONSE)
            occurrences[bootstrap_peer.peer_id] += 1
            known[bootstrap_peer.peer_id] = bootstrap_peer
            if bootstrap_peer.peer_id not in self.overlay:
                continue
            for neighbor_id in self.overlay.neighbors(bootstrap_peer.peer_id):
                if neighbor_id == info.peer_id:
                    continue
                occurrences[neighbor_id] += 1
                if neighbor_id not in known:
                    known[neighbor_id] = self.overlay.peer(neighbor_id)
        candidates = list(known.values())
        frequencies = np.asarray(
            [occurrences[c.peer_id] for c in candidates], dtype=float)
        return candidates, frequencies

    def _estimate_resource_level(self, info: PeerInfo,
                                 candidates: list[PeerInfo]) -> float:
        cfg = self.overlay_config
        capacities = [c.capacity for c in candidates]
        if len(capacities) > cfg.resource_level_sample_size:
            picks = self.rng.choice(
                len(capacities), size=cfg.resource_level_sample_size,
                replace=False)
            capacities = [capacities[int(i)] for i in picks]
        return estimate_resource_level(
            info.capacity, capacities, self.utility_config)

    def _select_and_connect(
        self,
        info: PeerInfo,
        candidates: list[PeerInfo],
        frequencies: np.ndarray,
        resource_level: float,
        target: int,
    ) -> tuple[list[int], list[int]]:
        distances = np.asarray(
            [info.coordinate_distance(c) for c in candidates], dtype=float)
        preference = selection_preference(
            frequencies, distances, resource_level, self.utility_config)
        # Rank every candidate by a weighted draw, then walk the ranking
        # until the degree target is met, skipping refusals.
        ranked = weighted_sample_without_replacement(
            self.rng, candidates, preference, len(candidates))
        connected: list[int] = []
        refused: list[int] = []
        for candidate in ranked:
            if len(connected) >= target:
                break
            if candidate.peer_id not in self.overlay:
                continue
            if self.overlay.has_link(info.peer_id, candidate.peer_id):
                continue
            self.stats.record(MessageKind.BACK_CONNECT_REQUEST)
            if self._back_link_accepted(info, candidate):
                self.stats.record(MessageKind.BACK_CONNECT_ACK)
                self.stats.record(MessageKind.CONNECT)
                self.overlay.add_link(info.peer_id, candidate.peer_id)
                connected.append(candidate.peer_id)
            else:
                refused.append(candidate.peer_id)
        if not connected and candidates:
            # Degenerate fallback: never leave a joiner isolated if anyone
            # is reachable — connect to the top-ranked candidate.
            fallback = next(
                (c for c in ranked if c.peer_id in self.overlay), None)
            if fallback is not None:
                self.stats.record(MessageKind.CONNECT)
                self.overlay.add_link(info.peer_id, fallback.peer_id)
                connected.append(fallback.peer_id)
        return connected, refused

    def _back_link_accepted(self, info: PeerInfo,
                            candidate: PeerInfo) -> bool:
        neighbor_ids = self.overlay.neighbors(candidate.peer_id)
        neighbor_infos = [self.overlay.peer(n) for n in neighbor_ids]
        probability = back_link_acceptance_probability(
            own_capacity=candidate.capacity,
            requester_capacity=info.capacity,
            requester_distance_ms=candidate.coordinate_distance(info),
            neighbor_capacities=[n.capacity for n in neighbor_infos],
            neighbor_distances_ms=[
                candidate.coordinate_distance(n) for n in neighbor_infos],
        )
        if self.rng.random() < probability:
            return True
        return self.rng.random() < self.overlay_config.back_link_fallback_prob

"""Blind-search primitives for unstructured overlays.

Section 2.2: without DHT abstractions, "searching has to be carried out
either by flooding the request or through random walks.  The former
approach results in heavy communication overheads, whereas the latter
may generate very long search paths which would affect the communication
latencies."  Both primitives are implemented here — the TTL-scoped
*ripple search* Gnutella-style flood (used by subscriptions and tree
repair) and *k-walker random walks* — so that the trade-off itself is
measurable (see ``benchmarks/test_ablation_search.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Collection, Optional

from ..errors import OverlayError
from ..obs.registry import Registry, get_default_registry
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    SpanContext,
    Tracer,
    get_default_tracer,
)
from ..overlay.messages import MessageKind
from ..sim.random import RandomSource
from .graph import OverlayNetwork

#: Decides whether a visited peer satisfies the search.
Predicate = Callable[[int], bool]

#: Maps a peer pair to the one-hop message latency (ms).
LatencyFn = Callable[[int, int], float]


@dataclass(frozen=True)
class SearchHit:
    """A successful blind search."""

    target: int
    route: tuple[int, ...]  # origin ... node-before-target
    latency_ms: float       # one-way, along the discovered route
    depth: int              # overlay hops to the target
    #: Span of the probe that reached the target (None unless the
    #: search ran under span tracing); callers parent follow-up
    #: messages (e.g. a SEARCH_RESPONSE) on it to keep the chain causal.
    span: Optional[SpanContext] = None


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one blind search."""

    hit: Optional[SearchHit]
    messages: int

    @property
    def found(self) -> bool:
        """True if the predicate matched within the budget."""
        return self.hit is not None


def ripple_search(
    overlay: OverlayNetwork,
    origin: int,
    predicate: Predicate,
    ttl: int,
    latency_fn: LatencyFn | None = None,
    exclude: Collection[int] = (),
    registry: Registry | None = None,
    tracer: Tracer | None = None,
    parent_span: SpanContext | None = None,
) -> SearchResult:
    """TTL-scoped flood from ``origin``.

    Explores breadth-first, one ring at a time, charging one message per
    overlay edge crossed.  Among hits in the shallowest ring, the one
    with the lowest accumulated latency wins (ties by latency only exist
    when ``latency_fn`` is given; otherwise the first found wins).
    ``exclude`` nodes are never returned nor traversed.

    Under span tracing every edge crossing records as a child span of
    the probe that reached its sender (the origin's probes parent on
    ``parent_span``), so the flood reconstructs as a tree of rings; the
    winning hit carries its probe span (:attr:`SearchHit.span`).
    """
    if origin not in overlay:
        raise OverlayError(f"origin {origin} is not in the overlay")
    registry = registry if registry is not None else get_default_registry()
    tracer = tracer if tracer is not None else get_default_tracer()
    tracing = tracer is not None and tracer.spans
    detail = MessageKind.SUBSCRIPTION_SEARCH.value
    cost = latency_fn if latency_fn is not None else (lambda a, b: 1.0)
    excluded = set(exclude)
    messages = 0
    visited = {origin} | excluded
    # (node, route from origin to node inclusive, accumulated latency,
    #  span of the probe that reached the node)
    frontier: list[tuple[int, tuple[int, ...], float, object]] = [
        (origin, (origin,), 0.0, parent_span)]
    registry.counter("search.ripple.searches").inc()
    c_messages = registry.counter("search.ripple.messages")
    for depth in range(1, ttl + 1):
        next_frontier: list[tuple[int, tuple[int, ...], float, object]] = []
        hits: list[tuple[float, int, int, tuple[int, ...], object]] = []
        for node, route, elapsed, node_span in frontier:
            for neighbor in overlay.neighbors(node):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                messages += 1
                arrival = elapsed + cost(node, neighbor)
                span = None
                if tracing:
                    span = tracer.child_span(node_span)
                    tracer.record(elapsed, KIND_SEND, a=node, b=neighbor,
                                  detail=detail, span=span)
                    tracer.record(arrival, KIND_DELIVER, a=node,
                                  b=neighbor, detail=detail, span=span)
                if predicate(neighbor):
                    hits.append((arrival, neighbor, messages, route, span))
                else:
                    next_frontier.append(
                        (neighbor, route + (neighbor,), arrival, span))
        if hits:
            # messages (strictly increasing at append time) settles every
            # comparison before the (non-orderable) span element.
            hits.sort(key=lambda h: h[:3])
            latency, target, _, route, span = hits[0]
            c_messages.inc(messages)
            registry.counter("search.ripple.hits").inc()
            return SearchResult(
                hit=SearchHit(target=target, route=route,
                              latency_ms=latency, depth=depth, span=span),
                messages=messages)
        frontier = next_frontier
        if not frontier:
            break
    c_messages.inc(messages)
    registry.counter("search.ripple.misses").inc()
    return SearchResult(hit=None, messages=messages)


def random_walk_search(
    overlay: OverlayNetwork,
    origin: int,
    predicate: Predicate,
    rng: RandomSource,
    walkers: int = 4,
    walk_length: int = 32,
    latency_fn: LatencyFn | None = None,
    exclude: Collection[int] = (),
    registry: Registry | None = None,
) -> SearchResult:
    """``walkers`` independent random walks from ``origin``.

    Each walk takes up to ``walk_length`` steps, avoiding its immediate
    predecessor; one message per step.  The first hit (over all walks,
    walks executed sequentially) wins — its latency is the sum along the
    walk so far, which is why walks trade low traffic for long paths.
    """
    if origin not in overlay:
        raise OverlayError(f"origin {origin} is not in the overlay")
    if walkers < 1 or walk_length < 1:
        raise OverlayError("walkers and walk_length must be >= 1")
    registry = registry if registry is not None else get_default_registry()
    registry.counter("search.walk.searches").inc()
    cost = latency_fn if latency_fn is not None else (lambda a, b: 1.0)
    excluded = set(exclude)
    messages = 0
    best: Optional[SearchHit] = None
    for _ in range(walkers):
        current = origin
        previous: int | None = None
        route = (origin,)
        elapsed = 0.0
        for step in range(1, walk_length + 1):
            neighbors = [n for n in overlay.neighbors(current)
                         if n not in excluded]
            if previous is not None and len(neighbors) > 1:
                neighbors = [n for n in neighbors if n != previous]
            if not neighbors:
                break
            step_to = neighbors[int(rng.integers(len(neighbors)))]
            messages += 1
            elapsed += cost(current, step_to)
            if predicate(step_to):
                hit = SearchHit(target=step_to, route=route,
                                latency_ms=elapsed, depth=step)
                if best is None or hit.latency_ms < best.latency_ms:
                    best = hit
                break
            previous, current = current, step_to
            route = route + (step_to,)
    registry.counter("search.walk.messages").inc(messages)
    registry.counter(
        "search.walk.hits" if best is not None else "search.walk.misses"
    ).inc()
    return SearchResult(hit=best, messages=messages)

"""Peer model: identity quadruplets and capacity distributions."""

from .capacity import (
    PAPER_CAPACITY_DISTRIBUTION,
    CapacityDistribution,
    zipf_capacities,
)
from .peer import PeerInfo

__all__ = [
    "PAPER_CAPACITY_DISTRIBUTION",
    "CapacityDistribution",
    "zipf_capacities",
    "PeerInfo",
]

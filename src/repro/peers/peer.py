"""Peer identity.

Section 3.3: "an arbitrary peer in our overlay is uniquely identified by a
tuple of four attributes <IP address, port number, coordinate, capacity>".
:class:`PeerInfo` is that quadruplet; the simulated IP address/port are
synthesised from the peer id so the wire-format identity stays faithful
while the simulator indexes peers by integer id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PeerInfo:
    """The identification quadruplet a peer advertises to the network."""

    peer_id: int
    capacity: float
    coordinate: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.peer_id < 0:
            raise ValueError("peer_id must be non-negative")
        if self.capacity <= 0.0:
            raise ValueError("capacity must be positive")

    @classmethod
    def from_arrays(cls, peer_id: int, row: int, capacity: np.ndarray,
                    coords: np.ndarray) -> "PeerInfo":
        """Materialize the quadruplet of one struct-of-arrays row.

        The coordinate is copied out of the column so the returned info
        stays valid even if the store later grows (reallocates) its
        arrays.
        """
        return cls(peer_id=peer_id, capacity=float(capacity[row]),
                   coordinate=coords[row].copy())

    @property
    def ip_address(self) -> str:
        """Synthetic dotted-quad address derived from the peer id."""
        value = self.peer_id & 0xFFFFFFFF
        return (f"10.{(value >> 16) & 0xFF}."
                f"{(value >> 8) & 0xFF}.{value & 0xFF}")

    @property
    def port(self) -> int:
        """Synthetic port in the registered range."""
        return 6346 + (self.peer_id % 1000)

    def quadruplet(self) -> tuple[str, int, tuple[float, ...], float]:
        """The `<IP, port, coordinate, capacity>` tuple of Section 3.3."""
        return (self.ip_address, self.port,
                tuple(float(x) for x in self.coordinate), self.capacity)

    def coordinate_distance(self, other: "PeerInfo") -> float:
        """Coordinate-space latency estimate to ``other`` (ms)."""
        return float(np.linalg.norm(self.coordinate - other.coordinate))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PeerInfo):
            return NotImplemented
        return (self.peer_id == other.peer_id
                and self.capacity == other.capacity
                and np.array_equal(self.coordinate, other.coordinate))

    def __hash__(self) -> int:
        return hash((self.peer_id, self.capacity))

"""Peer capacity models.

Capacity is "measured in terms of accessible network bandwidth ... the
number of 64 kbps connections the node is willing to support" (Section
3.1).  Table 1 of the paper gives the distribution used in every overlay
experiment, derived from the Saroiu et al. Gnutella measurement study:

======== ===================
level    percentage of peers
======== ===================
1x       20 %
10x      45 %
100x     30 %
1000x    4.9 %
10000x   0.1 %
======== ===================

Figures 1-6 instead draw candidate capacities from a Zipf distribution
with exponent 2.0; :func:`zipf_capacities` reproduces that workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..sim.random import RandomSource


@dataclass(frozen=True)
class CapacityDistribution:
    """A categorical distribution over capacity levels."""

    levels: tuple[float, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.weights) or not self.levels:
            raise ConfigurationError(
                "levels and weights must be equal-length and non-empty")
        if any(level <= 0.0 for level in self.levels):
            raise ConfigurationError("capacity levels must be positive")
        if any(weight < 0.0 for weight in self.weights):
            raise ConfigurationError("weights must be non-negative")
        total = sum(self.weights)
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ConfigurationError(
                f"weights must sum to 1, got {total}")

    def sample(self, rng: RandomSource, count: int = 1) -> np.ndarray:
        """Draw ``count`` capacities."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        return rng.choice(self.levels, size=count, p=self.weights)

    def sample_one(self, rng: RandomSource) -> float:
        """Draw a single capacity value."""
        return float(self.sample(rng, 1)[0])

    def mean(self) -> float:
        """Expected capacity."""
        return float(np.dot(self.levels, self.weights))

    def resource_level_of(self, capacity: float) -> float:
        """Exact population fraction with capacity strictly below ``capacity``.

        This is the ground-truth value the paper's peers *estimate* by
        sampling; exposed for tests and ablations.
        """
        return float(sum(w for level, w in zip(self.levels, self.weights)
                         if level < capacity))


#: Table 1 of the paper.
PAPER_CAPACITY_DISTRIBUTION = CapacityDistribution(
    levels=(1.0, 10.0, 100.0, 1000.0, 10000.0),
    weights=(0.20, 0.45, 0.30, 0.049, 0.001),
)


def zipf_capacities(rng: RandomSource, count: int,
                    exponent: float = 2.0,
                    max_capacity: float = 1000.0) -> np.ndarray:
    """Zipf-distributed capacities as used for Figures 1-6.

    Values follow ``P(c = k) ~ k**(-exponent)`` truncated at
    ``max_capacity`` (the figures plot capacities up to 10^3).
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if exponent <= 1.0:
        raise ConfigurationError("zipf exponent must be > 1")
    draws = rng.zipf(exponent, size=count).astype(float)
    return np.minimum(draws, max_capacity)

"""Datagram framing for the asyncio transport.

One UDP datagram carries exactly one :class:`Frame`.  The wire format is
a 4-byte magic/version tag followed by one canonical JSON object — small
enough for loopback MTUs, deterministic enough to hash, and dependency-
free (the container ships no msgpack/protobuf).

Protocol payloads are dataclasses registered in :data:`PAYLOAD_TYPES`
(the session wire vocabulary: advertise, subscribe, search, search
reply, payload — plus the ops introspection pair).  Encoding stores
the dataclass fields; decoding rebuilds the registered type, coercing
JSON arrays back to tuples (recursively — ops replies nest tuples) —
every registered payload uses tuples for its sequence fields, so
``decode(encode(x)) == x`` holds exactly (property-tested in
``tests/test_runtime_framing.py``).

Frames optionally carry a causal span header ``"c"``: the
``(trace_id, span_id, parent_id)`` triple of the
:class:`~repro.obs.tracer.SpanContext` minted at the sender, so a live
episode's cross-datagram causality reconstructs into the same
:class:`~repro.obs.causality.SpanForest` a sim run produces.  The
header is omitted for span-less frames — wire bytes are unchanged when
span capture is off, and frames encoded before this header existed
still decode (``span=None``).  The sender's *incarnation* already
rides the frame ``nonce``, completing the span context triple plus
incarnation the live tracing needs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import FramingError
from ..groupcast.session import (
    Advertise,
    Payload,
    Search,
    SearchReply,
    Subscribe,
)
from ..obs.tracer import SpanContext
from ..overlay.messages import MessageKind
from .ops import OpsReply, OpsRequest

#: Wire magic + codec version.  Bump on any incompatible layout change.
MAGIC = b"RPR1"

#: Hard datagram budget; loopback MTUs are ~64 KiB, stay well under.
MAX_FRAME_BYTES = 32_768

#: Frame types.
DATA = "data"
ACK = "ack"

#: Registered protocol payload dataclasses, by wire name.
PAYLOAD_TYPES: Mapping[str, type] = {
    "advertise": Advertise,
    "subscribe": Subscribe,
    "search": Search,
    "search_reply": SearchReply,
    "payload": Payload,
    "ops_request": OpsRequest,
    "ops_reply": OpsReply,
}

_TYPE_NAMES = {cls: name for name, cls in PAYLOAD_TYPES.items()}


@dataclass(frozen=True)
class Frame:
    """One datagram: either a payload carrier or an acknowledgement.

    ``seq`` numbers are per ``(sender, recipient)`` direction and drive
    both retransmission (sender side) and duplicate suppression
    (receiver side); an ``ack`` frame echoes the acknowledged ``seq``.
    ``nonce`` identifies the sender's *incarnation*: a restarted peer
    gets a fresh nonce, so its from-zero sequence numbers are not
    swallowed by dedup state remembered from its previous life, and
    stale acks from an old incarnation cannot clear new frames.
    """

    frame_type: str
    sender: int
    recipient: int
    seq: int
    kind: str = ""
    sent_at_ms: float = 0.0
    payload: object | None = None
    nonce: int = 0
    span: Optional[SpanContext] = None

    def message_kind(self) -> MessageKind | None:
        """The :class:`MessageKind` this frame carries, if any."""
        return MessageKind(self.kind) if self.kind else None


def encode_payload(payload: object) -> dict:
    """Encode a registered payload dataclass to a JSON-safe dict."""
    name = _TYPE_NAMES.get(type(payload))
    if name is None:
        raise FramingError(
            f"unregistered payload type {type(payload).__name__!r}")
    return {"t": name, "f": dataclasses.asdict(payload)}


def _coerce(value: object) -> object:
    """JSON arrays back to tuples, recursively (ops rows nest)."""
    if isinstance(value, list):
        return tuple(_coerce(item) for item in value)
    return value


def decode_payload(obj: dict) -> object:
    """Rebuild a registered payload dataclass from its wire dict."""
    try:
        cls = PAYLOAD_TYPES[obj["t"]]
        fields = obj["f"]
    except (KeyError, TypeError) as exc:
        raise FramingError(f"malformed payload object: {obj!r}") from exc
    coerced = {key: _coerce(value) for key, value in fields.items()}
    try:
        return cls(**coerced)
    except TypeError as exc:
        raise FramingError(
            f"payload fields do not match {cls.__name__}: {exc}") from exc


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame to a datagram."""
    if frame.frame_type not in (DATA, ACK):
        raise FramingError(f"unknown frame type {frame.frame_type!r}")
    body: dict = {
        "y": frame.frame_type,
        "a": frame.sender,
        "b": frame.recipient,
        "q": frame.seq,
        "k": frame.kind,
        "s": frame.sent_at_ms,
        "n": frame.nonce,
    }
    if frame.payload is not None:
        body["p"] = encode_payload(frame.payload)
    if frame.span is not None:
        # Causal span header: omitted when absent so span-less frames
        # keep the exact pre-header wire bytes (back-compat is pinned
        # by the framing property suite).
        body["c"] = [frame.span.trace_id, frame.span.span_id,
                     frame.span.parent_id]
    encoded = MAGIC + json.dumps(
        body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(encoded) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame of {len(encoded)} bytes exceeds {MAX_FRAME_BYTES}")
    return encoded


def decode_frame(datagram: bytes) -> Frame:
    """Parse one datagram back into a :class:`Frame`."""
    if len(datagram) < len(MAGIC) or datagram[: len(MAGIC)] != MAGIC:
        raise FramingError("datagram does not start with the frame magic")
    try:
        body = json.loads(datagram[len(MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FramingError(f"undecodable frame body: {exc}") from exc
    if not isinstance(body, dict):
        raise FramingError("frame body must be a JSON object")
    try:
        frame_type = body["y"]
        sender = body["a"]
        recipient = body["b"]
        seq = body["q"]
    except KeyError as exc:
        raise FramingError(f"frame missing field {exc}") from exc
    if frame_type not in (DATA, ACK):
        raise FramingError(f"unknown frame type {frame_type!r}")
    payload = None
    if "p" in body:
        payload = decode_payload(body["p"])
    span = None
    if "c" in body:
        triple = body["c"]
        if not isinstance(triple, list) or len(triple) != 3:
            raise FramingError(f"malformed span header: {triple!r}")
        span = SpanContext(int(triple[0]), int(triple[1]),
                           int(triple[2]))
    return Frame(
        frame_type=frame_type,
        sender=int(sender),
        recipient=int(recipient),
        seq=int(seq),
        kind=str(body.get("k", "")),
        sent_at_ms=float(body.get("s", 0.0)),
        payload=payload,
        nonce=int(body.get("n", 0)),
        span=span,
    )

"""Datagram framing for the asyncio transport.

One UDP datagram carries exactly one :class:`Frame`.  The wire format is
a 4-byte magic/version tag followed by one canonical JSON object — small
enough for loopback MTUs, deterministic enough to hash, and dependency-
free (the container ships no msgpack/protobuf).

Protocol payloads are dataclasses registered in :data:`PAYLOAD_TYPES`
(the session wire vocabulary: advertise, subscribe, search, search
reply, payload).  Encoding stores the dataclass fields; decoding
rebuilds the registered type, coercing JSON arrays back to tuples —
every registered payload uses tuples for its sequence fields, so
``decode(encode(x)) == x`` holds exactly (property-tested in
``tests/test_runtime_framing.py``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Mapping

from ..errors import FramingError
from ..groupcast.session import (
    Advertise,
    Payload,
    Search,
    SearchReply,
    Subscribe,
)
from ..overlay.messages import MessageKind

#: Wire magic + codec version.  Bump on any incompatible layout change.
MAGIC = b"RPR1"

#: Hard datagram budget; loopback MTUs are ~64 KiB, stay well under.
MAX_FRAME_BYTES = 32_768

#: Frame types.
DATA = "data"
ACK = "ack"

#: Registered protocol payload dataclasses, by wire name.
PAYLOAD_TYPES: Mapping[str, type] = {
    "advertise": Advertise,
    "subscribe": Subscribe,
    "search": Search,
    "search_reply": SearchReply,
    "payload": Payload,
}

_TYPE_NAMES = {cls: name for name, cls in PAYLOAD_TYPES.items()}


@dataclass(frozen=True)
class Frame:
    """One datagram: either a payload carrier or an acknowledgement.

    ``seq`` numbers are per ``(sender, recipient)`` direction and drive
    both retransmission (sender side) and duplicate suppression
    (receiver side); an ``ack`` frame echoes the acknowledged ``seq``.
    ``nonce`` identifies the sender's *incarnation*: a restarted peer
    gets a fresh nonce, so its from-zero sequence numbers are not
    swallowed by dedup state remembered from its previous life, and
    stale acks from an old incarnation cannot clear new frames.
    """

    frame_type: str
    sender: int
    recipient: int
    seq: int
    kind: str = ""
    sent_at_ms: float = 0.0
    payload: object | None = None
    nonce: int = 0

    def message_kind(self) -> MessageKind | None:
        """The :class:`MessageKind` this frame carries, if any."""
        return MessageKind(self.kind) if self.kind else None


def encode_payload(payload: object) -> dict:
    """Encode a registered payload dataclass to a JSON-safe dict."""
    name = _TYPE_NAMES.get(type(payload))
    if name is None:
        raise FramingError(
            f"unregistered payload type {type(payload).__name__!r}")
    return {"t": name, "f": dataclasses.asdict(payload)}


def decode_payload(obj: dict) -> object:
    """Rebuild a registered payload dataclass from its wire dict."""
    try:
        cls = PAYLOAD_TYPES[obj["t"]]
        fields = obj["f"]
    except (KeyError, TypeError) as exc:
        raise FramingError(f"malformed payload object: {obj!r}") from exc
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in fields.items()
    }
    try:
        return cls(**coerced)
    except TypeError as exc:
        raise FramingError(
            f"payload fields do not match {cls.__name__}: {exc}") from exc


def encode_frame(frame: Frame) -> bytes:
    """Serialize one frame to a datagram."""
    if frame.frame_type not in (DATA, ACK):
        raise FramingError(f"unknown frame type {frame.frame_type!r}")
    body: dict = {
        "y": frame.frame_type,
        "a": frame.sender,
        "b": frame.recipient,
        "q": frame.seq,
        "k": frame.kind,
        "s": frame.sent_at_ms,
        "n": frame.nonce,
    }
    if frame.payload is not None:
        body["p"] = encode_payload(frame.payload)
    encoded = MAGIC + json.dumps(
        body, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(encoded) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame of {len(encoded)} bytes exceeds {MAX_FRAME_BYTES}")
    return encoded


def decode_frame(datagram: bytes) -> Frame:
    """Parse one datagram back into a :class:`Frame`."""
    if len(datagram) < len(MAGIC) or datagram[: len(MAGIC)] != MAGIC:
        raise FramingError("datagram does not start with the frame magic")
    try:
        body = json.loads(datagram[len(MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FramingError(f"undecodable frame body: {exc}") from exc
    if not isinstance(body, dict):
        raise FramingError("frame body must be a JSON object")
    try:
        frame_type = body["y"]
        sender = body["a"]
        recipient = body["b"]
        seq = body["q"]
    except KeyError as exc:
        raise FramingError(f"frame missing field {exc}") from exc
    if frame_type not in (DATA, ACK):
        raise FramingError(f"unknown frame type {frame_type!r}")
    payload = None
    if "p" in body:
        payload = decode_payload(body["p"])
    return Frame(
        frame_type=frame_type,
        sender=int(sender),
        recipient=int(recipient),
        seq=int(seq),
        kind=str(body.get("k", "")),
        sent_at_ms=float(body.get("s", 0.0)),
        payload=payload,
        nonce=int(body.get("n", 0)),
    )

"""A deterministic lossy channel for sans-IO reliability tests.

:class:`FaultyTransport` reinterprets the PR-3 fault vocabulary
(:class:`~repro.faults.plan.FaultWindow`,
:class:`~repro.faults.plan.PartitionWindow`) against raw
:class:`~repro.runtime.framing.Frame` traffic instead of a live
:class:`~repro.sim.messaging.MessageNetwork`: callers hand it a frame
and a virtual timestamp, and it answers with the (possibly empty,
possibly duplicated, possibly delayed) list of deliveries the wire
would have produced.  All randomness comes from one seeded generator,
so a given ``(plan, seed)`` pair always mistreats the same frames the
same way — which is what lets the Hypothesis suite assert that
:class:`~repro.runtime.reliability.ReliableEndpoint` delivers every
payload exactly once over arbitrarily hostile schedules.
"""

from __future__ import annotations

from ..faults.plan import FaultPlan
from ..sim.random import RandomSource
from .framing import Frame


class FaultyTransport:
    """Applies a :class:`FaultPlan`'s message faults to frames."""

    __slots__ = ("plan", "rng", "base_latency_ms", "dropped", "duplicated")

    def __init__(self, plan: FaultPlan, rng: RandomSource,
                 base_latency_ms: float = 5.0) -> None:
        self.plan = plan
        self.rng = rng
        self.base_latency_ms = base_latency_ms
        self.dropped = 0
        self.duplicated = 0

    def transmit(self, frame: Frame,
                 now_ms: float) -> list[tuple[float, Frame]]:
        """One frame enters the wire at ``now_ms``.

        Returns ``(deliver_at_ms, frame)`` pairs — empty when the frame
        is dropped or the link is partitioned, two entries when a
        duplicate window fires.  Delivery times are absolute.
        """
        partition = self.plan.partition_at(now_ms)
        if partition is not None and partition.severed(
                frame.sender, frame.recipient):
            self.dropped += 1
            return []
        latency = self.base_latency_ms
        copies = 1
        skew = 0.0
        for window in self.plan.active_windows(
                now_ms, frame.sender, frame.recipient):
            if self.rng.random() >= window.probability:
                continue
            if window.kind == "drop":
                self.dropped += 1
                return []
            if window.kind == "duplicate":
                copies = 2
                skew = float(self.rng.uniform(0.0, window.magnitude_ms))
            elif window.kind == "delay":
                latency += window.magnitude_ms + float(
                    self.rng.uniform(0.0, window.magnitude_ms))
            elif window.kind == "reorder":
                latency += float(self.rng.uniform(0.0, window.magnitude_ms))
        deliveries = [(now_ms + latency, frame)]
        if copies == 2:
            self.duplicated += 1
            deliveries.append((now_ms + latency + skew, frame))
        return deliveries

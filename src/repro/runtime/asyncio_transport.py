"""Real-socket substrate of the transport seam.

:class:`AsyncioTransport` carries the same protocol traffic the
simulator models over actual UDP datagram sockets on one asyncio loop.
Each locally hosted peer gets its own socket; frames are encoded by
:mod:`repro.runtime.framing`, sequenced and retransmitted-until-acked by
a per-peer :class:`~repro.runtime.reliability.ReliableEndpoint`, and
delivered to the registered handler as the same
:class:`~repro.sim.messaging.Envelope` objects the sim transport
produces — protocol code cannot tell the substrates apart.

Counters mirror the sim fabric (``net.sent`` / ``net.delivered`` /
``net.dead_lettered`` and per-kind ``messages.<kind>``) so the
conformance comparator can line up logical message counts; transport
chatter (acks, retransmits, duplicates, expiries) lands under
``runtime.*`` and never pollutes the logical counts.

An optional ``latency_fn`` *paces* deliveries: a frame delivered early
is held until ``sent_at + latency_fn(sender, recipient)``.  Loopback
jitter is ~1-2 ms, so pacing with the sim's own latency model (plus
topologies whose path sums differ by more than the jitter) makes the
live NSSA tree converge to the simulated one — the basis of the
loopback conformance test.

Causal spans ride the frames themselves: :meth:`send` mints a child
span of the ambient :attr:`current_span` and stamps it into the
frame's ``"c"`` header, so the receiving side — even a peer in another
process — reconstructs the cross-datagram causality without any shared
span table.  Wire-level mishaps injected through an attached
:class:`~repro.runtime.faulty.FaultyTransport` (see
:meth:`inject_faults`) are recovered by the ARQ layer, so they count
under ``runtime.fault_*`` — never ``faults.*``, which would break the
transport conservation identity the reports check.
"""

from __future__ import annotations

import asyncio
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from ..errors import TransportError
from ..obs.registry import Counter, Registry
from ..obs.tracer import (
    KIND_DEAD_LETTER,
    KIND_DELIVER,
    KIND_FAULT_DROP,
    KIND_SEND,
    SpanContext,
    Tracer,
)
from ..overlay.messages import MessageKind, MessageStats
from .framing import ACK, Frame, decode_frame, encode_frame
from .reliability import ReliableEndpoint, RetryPolicy
from .transport import AsyncioTimers, Handler, TimerHandle, Transport

#: Maps a peer pair to the pacing latency in milliseconds (optional).
LatencyFn = Callable[[int, int], float]


class _DatagramProtocol(asyncio.DatagramProtocol):
    """Forwards one peer socket's datagrams into the transport."""

    def __init__(self, owner: "AsyncioTransport", peer_id: int) -> None:
        self.owner = owner
        self.peer_id = peer_id

    def datagram_received(self, data: bytes, addr) -> None:
        self.owner._on_datagram(self.peer_id, data)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        pass  # ICMP errors on loopback are not actionable; ARQ recovers


class _PeerEndpoint:
    """One locally hosted peer: socket + ARQ state + retransmit pump."""

    __slots__ = ("peer_id", "transport", "reliable", "pump_handle")

    def __init__(self, peer_id: int, transport, reliable: ReliableEndpoint
                 ) -> None:
        self.peer_id = peer_id
        self.transport = transport
        self.reliable = reliable
        self.pump_handle = None


class AsyncioTransport(Transport):
    """UDP loopback fabric with framing and retransmit-until-ack."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        policy: Optional[RetryPolicy] = None,
        latency_fn: Optional[LatencyFn] = None,
        stats: Optional[MessageStats] = None,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.host = host
        self.policy = policy or RetryPolicy()
        self.latency_fn = latency_fn
        self.stats = stats or MessageStats()
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.current_span: Optional[SpanContext] = None
        self._timers: Optional[AsyncioTimers] = None
        self._incarnations: dict[int, int] = {}
        self._dead: set[int] = set()
        self._endpoints: dict[int, _PeerEndpoint] = {}
        self._routes: dict[int, tuple[str, int]] = {}
        self._handlers: dict[int, Handler] = {}
        self._pending = 0
        self.faults = None  # optional FaultyTransport (inject_faults)
        self._c_sent = self.registry.counter("net.sent")
        self._c_delivered = self.registry.counter("net.delivered")
        self._c_dead = self.registry.counter("net.dead_lettered")
        self._c_malformed = self.registry.counter("runtime.malformed")
        self._c_fault_dropped = self.registry.counter(
            "runtime.fault_dropped")
        self._c_fault_duplicated = self.registry.counter(
            "runtime.fault_duplicated")
        self._kind_counters: dict[MessageKind, Counter] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the transport to the running loop (call before peers)."""
        self._timers = AsyncioTimers(asyncio.get_running_loop())

    async def start_peer(self, peer_id: int,
                         handler: Optional[Handler] = None,
                         port: int = 0) -> tuple[str, int]:
        """Open a datagram socket for ``peer_id``; returns its address.

        ``port=0`` lets the OS pick (single-process clusters);
        multi-process deployments pass explicit ports and publish them
        to the other processes through :meth:`add_route`.
        """
        if self._timers is None:
            raise TransportError("transport not started")
        if peer_id in self._endpoints:
            raise TransportError(f"peer {peer_id} already started")
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(self, peer_id),
            local_addr=(self.host, port))
        address = transport.get_extra_info("sockname")[:2]
        # Each (re)start is a fresh incarnation: sequence numbers reset
        # to zero under a new nonce, so receivers' dedup state from a
        # previous life cannot swallow the reborn peer's frames.
        nonce = self._incarnations.get(peer_id, -1) + 1
        self._incarnations[peer_id] = nonce
        self._dead.discard(peer_id)
        self._endpoints[peer_id] = _PeerEndpoint(
            peer_id, transport,
            ReliableEndpoint(peer_id, self.policy, self.registry,
                             nonce=nonce))
        self._routes[peer_id] = address
        if handler is not None:
            self.register(peer_id, handler)
        return address

    async def stop_peer(self, peer_id: int) -> None:
        """Close a peer's socket and forget its route.

        Models a crash with failure detection already converged: no
        goodbye traffic, and the surviving endpoints abandon their
        in-flight frames toward the dead peer (counted as
        dead-lettered) instead of retransmitting into the void.  The
        purge runs even when the peer is hosted elsewhere (known only
        through :meth:`add_route`) — local survivors must stop burning
        retry budget against the dead incarnation either way.
        """
        endpoint = self._endpoints.pop(peer_id, None)
        if endpoint is not None:
            if endpoint.pump_handle is not None:
                endpoint.pump_handle.cancel()
            endpoint.transport.close()
        self.forget_peer(peer_id)

    def forget_peer(self, peer_id: int) -> int:
        """Converge local failure detection on ``peer_id``.

        Drops its route, marks it dead (new sends dead-letter
        immediately), and purges every surviving endpoint's ARQ state
        toward it — in-flight retransmit windows (abandoned frames are
        counted dead-lettered) and dedup sets for its late incarnation.
        Returns the number of in-flight frames abandoned.
        """
        self._routes.pop(peer_id, None)
        self._dead.add(peer_id)
        self.unregister(peer_id)
        total_abandoned = 0
        for survivor in self._endpoints.values():
            abandoned = survivor.reliable.forget_peer(peer_id)
            total_abandoned += abandoned
            for _ in range(abandoned):
                self._c_dead.inc()
            if abandoned:
                self._schedule_pump(survivor)
        return total_abandoned

    async def close(self) -> None:
        """Stop every locally hosted peer."""
        for peer_id in list(self._endpoints):
            await self.stop_peer(peer_id)

    def add_route(self, peer_id: int, host: str, port: int) -> None:
        """Publish the address of a peer hosted by another process."""
        self._routes[peer_id] = (host, port)
        self._dead.discard(peer_id)

    # ------------------------------------------------------------------
    # Transport interface
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Milliseconds since :meth:`start` (monotonic loop clock)."""
        if self._timers is None:
            raise TransportError("transport not started")
        return self._timers.now()

    def arm_timer(self, delay_ms: float,
                  action: Callable[[], None]) -> TimerHandle:
        """Arm a loop callback; the asyncio timer handle is returned."""
        if self._timers is None:
            raise TransportError("transport not started")
        return self._timers.arm_timer(delay_ms, action)

    def register(self, peer_id: int, handler: Handler) -> None:
        """Attach a peer's message handler (replaces any previous one)."""
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: int) -> None:
        """Detach a peer; frames arriving for it dead-letter."""
        self._handlers.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        """True if the peer currently receives messages."""
        return peer_id in self._handlers

    def send(self, sender: int, recipient: int, payload: object,
             kind: MessageKind | None = None) -> None:
        """Frame, sequence and transmit one payload (ARQ underneath)."""
        if sender == recipient:
            raise TransportError("peers do not message themselves")
        endpoint = self._endpoints.get(sender)
        if endpoint is None:
            raise TransportError(f"peer {sender} is not hosted here")
        self._c_sent.inc()
        detail = ""
        if kind is not None:
            self.stats.record(kind)
            self._kind_counter(kind).inc()
            detail = kind.value
        if recipient in self._dead and recipient not in self._routes:
            # Failure detection has converged on this peer locally.
            # Mirror the sim fabric — which dead-letters sends to
            # unregistered peers — instead of burning the whole
            # retransmit budget into the void.
            self._c_dead.inc()
            if self.tracer is not None:
                span = self.tracer.child_span(self.current_span)
                self.tracer.record(self.now(), KIND_SEND, a=sender,
                                   b=recipient, detail=detail, span=span)
                self.tracer.record(self.now(), KIND_DEAD_LETTER, a=sender,
                                   b=recipient, detail=detail, span=span)
            return
        span = None
        if self.tracer is not None:
            span = self.tracer.child_span(self.current_span)
            self.tracer.record(self.now(), KIND_SEND, a=sender,
                               b=recipient, detail=detail, span=span)
        # The span travels in the frame header itself, so the receiver
        # — even one in another process — closes the same causal span
        # the sender opened.
        frame = endpoint.reliable.package(recipient, payload, kind,
                                          self.now(), span=span)
        self._transmit(endpoint, frame)
        self._schedule_pump(endpoint)

    @contextmanager
    def span_scope(self, span: Optional[SpanContext]) -> Iterator[None]:
        """Run a block with ``span`` as the ambient causal parent."""
        previous = self.current_span
        self.current_span = span
        try:
            yield
        finally:
            self.current_span = previous

    # ------------------------------------------------------------------
    # Introspection (the ops endpoint reads these)
    # ------------------------------------------------------------------
    def incarnation(self, peer_id: int) -> int:
        """The peer's current incarnation number (-1 if never started
        here)."""
        return self._incarnations.get(peer_id, -1)

    def arq_window(self, peer_id: int) -> int:
        """Frames the locally hosted peer still holds unacked (0 for
        peers hosted elsewhere)."""
        endpoint = self._endpoints.get(peer_id)
        return 0 if endpoint is None else endpoint.reliable.unacked()

    def arq_window_to(self, sender: int, recipient: int) -> int:
        """In-flight frames from a local ``sender`` toward
        ``recipient`` — the window :meth:`forget_peer` purges."""
        endpoint = self._endpoints.get(sender)
        if endpoint is None:
            return 0
        return endpoint.reliable.unacked_to(recipient)

    # ------------------------------------------------------------------
    # Quiescence (tests wait on this instead of sleeping)
    # ------------------------------------------------------------------
    def quiescent(self) -> bool:
        """True when no frame is unacked and no delivery is pending."""
        if self._pending:
            return False
        return all(ep.reliable.unacked() == 0
                   for ep in self._endpoints.values())

    async def wait_quiescent(self, timeout_s: float,
                             interval_s: float = 0.02) -> bool:
        """Poll :meth:`quiescent` until true or the deadline passes."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            if self.quiescent():
                return True
            await asyncio.sleep(interval_s)
        return self.quiescent()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _kind_counter(self, kind: MessageKind) -> Counter:
        counter = self._kind_counters.get(kind)
        if counter is None:
            counter = self.registry.counter(f"messages.{kind.value}")
            self._kind_counters[kind] = counter
        return counter

    def inject_faults(self, faulty) -> None:
        """Route every wire transmission (DATA and ACK alike) through a
        :class:`~repro.runtime.faulty.FaultyTransport`.

        Wire-level drops/duplicates/delays are *recovered* by the ARQ
        layer, so they are accounted under ``runtime.fault_dropped`` /
        ``runtime.fault_duplicated`` — not the ``faults.*`` counters,
        which feed the conservation identity of unrecovered losses.
        Construct the injector with a small ``base_latency_ms``: its
        latency adds to real loopback time underneath any pacing.
        """
        self.faults = faulty

    def _transmit(self, endpoint: _PeerEndpoint, frame: Frame) -> None:
        address = self._routes.get(frame.recipient)
        if address is None:
            return  # crashed/unknown peer: let the ARQ budget expire
        data = encode_frame(frame)
        if self.faults is None:
            endpoint.transport.sendto(data, address)
            return
        now_ms = self.now()
        deliveries = self.faults.transmit(frame, now_ms)
        if not deliveries:
            self._c_fault_dropped.inc()
            if self.tracer is not None:
                # Span-less on purpose: the ARQ layer will retransmit,
                # so the logical span stays open instead of closing as
                # "dropped" (which would diverge live span-tree shapes
                # from the loss-free sim twin).
                self.tracer.record(now_ms, KIND_FAULT_DROP,
                                   a=frame.sender, b=frame.recipient,
                                   detail=frame.kind)
            return
        if len(deliveries) > 1:
            self._c_fault_duplicated.inc()
        for deliver_at_ms, _ in deliveries:
            delay_ms = deliver_at_ms - now_ms
            if delay_ms <= 0.0:
                endpoint.transport.sendto(data, address)
            else:
                self.arm_timer(
                    delay_ms,
                    lambda: self._wire_send(endpoint, data, address))

    def _wire_send(self, endpoint: _PeerEndpoint, data: bytes,
                   address: tuple[str, int]) -> None:
        """Late (fault-delayed) wire emission; drops if the sender's
        socket closed while the timer was in flight."""
        if endpoint.peer_id not in self._endpoints:
            return
        if endpoint.transport.is_closing():
            return
        endpoint.transport.sendto(data, address)

    def _schedule_pump(self, endpoint: _PeerEndpoint) -> None:
        """(Re)arm the retransmit pump at the earliest ARQ deadline."""
        if endpoint.pump_handle is not None:
            endpoint.pump_handle.cancel()
            endpoint.pump_handle = None
        due_ms = endpoint.reliable.next_due_ms()
        if due_ms is None:
            return
        delay_ms = max(0.0, due_ms - self.now())
        endpoint.pump_handle = self.arm_timer(
            delay_ms, lambda: self._pump(endpoint))

    def _pump(self, endpoint: _PeerEndpoint) -> None:
        endpoint.pump_handle = None
        if endpoint.peer_id not in self._endpoints:
            return  # stopped while the timer was in flight
        for frame in endpoint.reliable.due_retransmits(self.now()):
            self._transmit(endpoint, frame)
        for frame in endpoint.reliable.take_expired():
            self._c_dead.inc()
            if self.tracer is not None:
                self.tracer.record(
                    self.now(), KIND_DEAD_LETTER, a=frame.sender,
                    b=frame.recipient, detail=frame.kind,
                    span=frame.span)
        self._schedule_pump(endpoint)

    def _on_datagram(self, peer_id: int, data: bytes) -> None:
        endpoint = self._endpoints.get(peer_id)
        if endpoint is None:
            return
        try:
            frame = decode_frame(data)
        except Exception:
            self._c_malformed.inc()
            return
        result = endpoint.reliable.on_frame(frame, self.now())
        if frame.frame_type == ACK:
            self._schedule_pump(endpoint)
            return
        if result.ack is not None:
            self._transmit(endpoint, result.ack)
        if not result.deliver:
            return
        span = frame.span
        delay_ms = 0.0
        if self.latency_fn is not None:
            try:
                target_ms = frame.sent_at_ms + self.latency_fn(
                    frame.sender, frame.recipient)
            except Exception:
                # Pairs outside the pacing table (ops probes cross the
                # overlay; edge-keyed tables only cover neighbors) are
                # delivered unpaced instead of wedging the socket
                # callback.
                target_ms = self.now()
            delay_ms = max(0.0, target_ms - self.now())
        self._pending += 1
        self.arm_timer(delay_ms, lambda: self._deliver(frame, span))

    def _deliver(self, frame: Frame, span: Optional[SpanContext]) -> None:
        from ..sim.messaging import Envelope

        self._pending -= 1
        handler = self._handlers.get(frame.recipient)
        detail = frame.kind
        if handler is None:
            self._c_dead.inc()
            if self.tracer is not None:
                self.tracer.record(self.now(), KIND_DEAD_LETTER,
                                   a=frame.sender, b=frame.recipient,
                                   detail=detail, span=span)
            return
        self._c_delivered.inc()
        if self.tracer is not None:
            self.tracer.record(self.now(), KIND_DELIVER, a=frame.sender,
                               b=frame.recipient, span=span)
        envelope = Envelope(
            sender=frame.sender,
            recipient=frame.recipient,
            payload=frame.payload,
            sent_at_ms=frame.sent_at_ms,
            delivered_at_ms=self.now(),
            kind=frame.message_kind(),
            span=span,
        )
        previous = self.current_span
        self.current_span = span
        try:
            handler(envelope)
        finally:
            self.current_span = previous

"""Hosting one protocol node over a live transport.

In the simulator a single :class:`~repro.groupcast.session.GroupSession`
owns every peer, the whole overlay graph and all measurement state — a
fine fiction for a sequential discrete-event run, but not how a deployed
peer works.  This module provides the honest per-peer analogue:

* :class:`LocalView` is the slice of the overlay one peer actually
  knows — itself and its direct neighbors.  It answers exactly the
  queries the protocol code makes (``neighbors`` of *itself*,
  ``peer`` info for itself and its neighbors) and refuses the global
  queries a real peer could never answer.
* :class:`PeerRuntime` implements the coordinator contract
  :class:`~repro.groupcast.session.GroupSessionNode` expects
  (``transport``, ``overlay``, ``announcement``, ``utility``, ``rng``,
  ``rendezvous``, ``record_*``) with purely local state, so the
  **identical** node class that runs inside ``GroupSession`` on the
  simulator runs here over an
  :class:`~repro.runtime.asyncio_transport.AsyncioTransport`.

:meth:`PeerRuntime.handle` is the transport entry point: it tracks
per-neighbor last-contact times (the heartbeat view an operator reads),
intercepts the ops introspection vocabulary
(:class:`~repro.runtime.ops.OpsRequest` is answered with this peer's
:meth:`~PeerRuntime.ops_view`, replies are collected for the prober),
and forwards everything else to the protocol state machine.
"""

from __future__ import annotations

from typing import Iterable

from ..config import AnnouncementConfig, UtilityConfig
from ..errors import PeerNotFoundError
from ..groupcast.session import GroupSessionNode
from ..overlay.messages import MessageKind
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource
from .ops import OpsReply, OpsRequest
from .transport import Transport


class LocalView:
    """One peer's local overlay knowledge: itself and its neighbors."""

    __slots__ = ("peer_id", "_infos", "_neighbor_ids")

    def __init__(self, info: PeerInfo,
                 neighbor_infos: Iterable[PeerInfo]) -> None:
        self.peer_id = info.peer_id
        ordered = list(neighbor_infos)
        self._neighbor_ids = [n.peer_id for n in ordered]
        self._infos = {info.peer_id: info}
        for neighbor in ordered:
            self._infos[neighbor.peer_id] = neighbor

    def neighbors(self, peer_id: int) -> list[int]:
        """Neighbor ids — answerable only for the owning peer."""
        if peer_id != self.peer_id:
            raise PeerNotFoundError(
                f"peer {self.peer_id} has no neighbor list for {peer_id}")
        return list(self._neighbor_ids)

    def peer(self, peer_id: int) -> PeerInfo:
        """Info for the owning peer or one of its neighbors."""
        try:
            return self._infos[peer_id]
        except KeyError:
            raise PeerNotFoundError(
                f"peer {peer_id} is outside {self.peer_id}'s local view"
            ) from None

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._infos


class PeerRuntime:
    """One peer's protocol host: the live analogue of ``GroupSession``.

    Satisfies the coordinator contract of
    :class:`~repro.groupcast.session.GroupSessionNode` with per-peer
    state only; the measurement hooks record into local dicts that the
    cluster layer aggregates for conformance comparison.
    """

    def __init__(
        self,
        view: LocalView,
        transport: Transport,
        announcement: AnnouncementConfig,
        utility: UtilityConfig,
        rng: RandomSource,
    ) -> None:
        self.overlay = view
        self.transport = transport
        self.announcement = announcement
        self.utility = utility
        self.rng = rng
        self.rendezvous: dict[int, int] = {}
        self.node = GroupSessionNode(view.peer_id, self)
        self.duplicates = 0
        self.receipts: dict[int, dict[int, float]] = {}
        self.failures: dict[int, set[int]] = {}
        self.deliveries: dict[tuple[int, int], dict[int, float]] = {}
        # Operational state: when each neighbor was last heard from and
        # the ops replies collected when this peer acts as a prober,
        # keyed (probe_id, replying peer).
        self.last_seen: dict[int, float] = {}
        self.ops_replies: dict[tuple[int, int], OpsReply] = {}

    @property
    def peer_id(self) -> int:
        """The hosted peer's identifier."""
        return self.overlay.peer_id

    # ------------------------------------------------------------------
    # Transport entry point
    # ------------------------------------------------------------------
    def handle(self, envelope) -> None:
        """Deliver one envelope: liveness tracking, ops interception,
        then the protocol state machine."""
        self.last_seen[envelope.sender] = envelope.delivered_at_ms
        payload = envelope.payload
        if isinstance(payload, OpsRequest):
            self.transport.send(self.peer_id, envelope.sender,
                                self.ops_view(payload.probe_id),
                                MessageKind.OPS_REPLY)
            return
        if isinstance(payload, OpsReply):
            self.ops_replies[(payload.probe_id, payload.peer_id)] = payload
            return
        self.node.handle(envelope)

    # ------------------------------------------------------------------
    # Ops introspection
    # ------------------------------------------------------------------
    def ops_view(self, probe_id: int = 0) -> OpsReply:
        """This peer's operational self-portrait, wire-encodable.

        Reads only local state plus the transport's introspection
        accessors (``incarnation`` / ``arq_window``, absent on the sim
        transport, default to -1/0).
        """
        now_ms = self.transport.now()
        groups = tuple(
            (group_id,
             state.upstream if state.upstream is not None else -1,
             int(state.on_tree),
             int(state.is_member),
             len(state.children))
            for group_id, state in sorted(self.node.groups.items()))
        ages = tuple(
            (peer_id, float(now_ms - at_ms))
            for peer_id, at_ms in sorted(self.last_seen.items()))
        incarnation_of = getattr(self.transport, "incarnation", None)
        window_of = getattr(self.transport, "arq_window", None)
        return OpsReply(
            peer_id=self.peer_id,
            probe_id=probe_id,
            incarnation=(int(incarnation_of(self.peer_id))
                         if incarnation_of is not None else -1),
            at_ms=float(now_ms),
            unacked=(int(window_of(self.peer_id))
                     if window_of is not None else 0),
            groups=groups,
            last_seen=ages,
        )

    # ------------------------------------------------------------------
    # Measurement hooks (the GroupSession contract, scoped to one peer)
    # ------------------------------------------------------------------
    def record_duplicate(self) -> None:
        """Count a dropped duplicate advertisement copy."""
        self.duplicates += 1

    def record_receipt(self, group_id: int, peer_id: int,
                       at_ms: float) -> None:
        """Log this peer's first advertisement receipt time."""
        self.receipts.setdefault(group_id, {})[peer_id] = at_ms

    def record_failure(self, group_id: int, peer_id: int) -> None:
        """Log a subscription that could not complete."""
        self.failures.setdefault(group_id, set()).add(peer_id)

    def record_delivery(self, group_id: int, payload_id: int,
                        peer_id: int, at_ms: float) -> None:
        """Log a payload delivery time at this peer."""
        self.deliveries.setdefault(
            (group_id, payload_id), {})[peer_id] = at_ms

    # ------------------------------------------------------------------
    def reset_group(self, group_id: int) -> None:
        """Blank this peer's per-group state (rejoin support)."""
        state = self.node.state(group_id)
        state.on_tree = False
        state.upstream = None
        state.has_advertisement = False
        state.search_answered = False

"""Hosting one protocol node over a live transport.

In the simulator a single :class:`~repro.groupcast.session.GroupSession`
owns every peer, the whole overlay graph and all measurement state — a
fine fiction for a sequential discrete-event run, but not how a deployed
peer works.  This module provides the honest per-peer analogue:

* :class:`LocalView` is the slice of the overlay one peer actually
  knows — itself and its direct neighbors.  It answers exactly the
  queries the protocol code makes (``neighbors`` of *itself*,
  ``peer`` info for itself and its neighbors) and refuses the global
  queries a real peer could never answer.
* :class:`PeerRuntime` implements the coordinator contract
  :class:`~repro.groupcast.session.GroupSessionNode` expects
  (``transport``, ``overlay``, ``announcement``, ``utility``, ``rng``,
  ``rendezvous``, ``record_*``) with purely local state, so the
  **identical** node class that runs inside ``GroupSession`` on the
  simulator runs here over an
  :class:`~repro.runtime.asyncio_transport.AsyncioTransport`.
"""

from __future__ import annotations

from typing import Iterable

from ..config import AnnouncementConfig, UtilityConfig
from ..errors import PeerNotFoundError
from ..groupcast.session import GroupSessionNode
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource
from .transport import Transport


class LocalView:
    """One peer's local overlay knowledge: itself and its neighbors."""

    __slots__ = ("peer_id", "_infos", "_neighbor_ids")

    def __init__(self, info: PeerInfo,
                 neighbor_infos: Iterable[PeerInfo]) -> None:
        self.peer_id = info.peer_id
        ordered = list(neighbor_infos)
        self._neighbor_ids = [n.peer_id for n in ordered]
        self._infos = {info.peer_id: info}
        for neighbor in ordered:
            self._infos[neighbor.peer_id] = neighbor

    def neighbors(self, peer_id: int) -> list[int]:
        """Neighbor ids — answerable only for the owning peer."""
        if peer_id != self.peer_id:
            raise PeerNotFoundError(
                f"peer {self.peer_id} has no neighbor list for {peer_id}")
        return list(self._neighbor_ids)

    def peer(self, peer_id: int) -> PeerInfo:
        """Info for the owning peer or one of its neighbors."""
        try:
            return self._infos[peer_id]
        except KeyError:
            raise PeerNotFoundError(
                f"peer {peer_id} is outside {self.peer_id}'s local view"
            ) from None

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._infos


class PeerRuntime:
    """One peer's protocol host: the live analogue of ``GroupSession``.

    Satisfies the coordinator contract of
    :class:`~repro.groupcast.session.GroupSessionNode` with per-peer
    state only; the measurement hooks record into local dicts that the
    cluster layer aggregates for conformance comparison.
    """

    def __init__(
        self,
        view: LocalView,
        transport: Transport,
        announcement: AnnouncementConfig,
        utility: UtilityConfig,
        rng: RandomSource,
    ) -> None:
        self.overlay = view
        self.transport = transport
        self.announcement = announcement
        self.utility = utility
        self.rng = rng
        self.rendezvous: dict[int, int] = {}
        self.node = GroupSessionNode(view.peer_id, self)
        self.duplicates = 0
        self.receipts: dict[int, dict[int, float]] = {}
        self.failures: dict[int, set[int]] = {}
        self.deliveries: dict[tuple[int, int], dict[int, float]] = {}

    @property
    def peer_id(self) -> int:
        """The hosted peer's identifier."""
        return self.overlay.peer_id

    # ------------------------------------------------------------------
    # Measurement hooks (the GroupSession contract, scoped to one peer)
    # ------------------------------------------------------------------
    def record_duplicate(self) -> None:
        """Count a dropped duplicate advertisement copy."""
        self.duplicates += 1

    def record_receipt(self, group_id: int, peer_id: int,
                       at_ms: float) -> None:
        """Log this peer's first advertisement receipt time."""
        self.receipts.setdefault(group_id, {})[peer_id] = at_ms

    def record_failure(self, group_id: int, peer_id: int) -> None:
        """Log a subscription that could not complete."""
        self.failures.setdefault(group_id, set()).add(peer_id)

    def record_delivery(self, group_id: int, payload_id: int,
                        peer_id: int, at_ms: float) -> None:
        """Log a payload delivery time at this peer."""
        self.deliveries.setdefault(
            (group_id, payload_id), {})[peer_id] = at_ms

    # ------------------------------------------------------------------
    def reset_group(self, group_id: int) -> None:
        """Blank this peer's per-group state (rejoin support)."""
        state = self.node.state(group_id)
        state.on_tree = False
        state.upstream = None
        state.has_advertisement = False
        state.search_answered = False

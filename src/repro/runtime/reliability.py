"""Sans-IO retransmit-until-ack reliability for datagram transports.

UDP loses, duplicates and reorders; the protocol layers above the
transport seam assume fire-and-forget delivery (the sim transport's
loss process is *modeled*, not compensated).  This module closes the
gap with a classic positive-ack ARQ scheme, written **sans-IO**: the
:class:`ReliableEndpoint` state machine never touches a socket or a
clock — callers feed it frames and timestamps and transmit whatever it
hands back.  That makes the retransmit logic deterministic under test:
the Hypothesis suite drives it against a seeded lossy
:class:`~repro.runtime.faulty.FaultyTransport` with a virtual clock and
proves every packaged payload is either delivered exactly once or
reported expired.

Per-peer sequence numbers do double duty: the sender keys its in-flight
window on ``(recipient, seq)`` and the receiver suppresses duplicates
on ``(sender, nonce, seq)`` — a retransmitted or fault-duplicated
datagram is re-acked but never re-delivered.  The ``nonce`` is the
sender's incarnation number: a restarted peer packages frames under a
fresh nonce, so its from-zero sequence numbers are not swallowed by
dedup state remembered from its previous life, and acks echoing an old
incarnation cannot clear new in-flight frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TransportError
from ..obs.registry import Registry
from ..obs.tracer import SpanContext
from ..overlay.messages import MessageKind
from .framing import ACK, DATA, Frame

#: Bucket bounds for the per-frame transmission-attempt histogram:
#: 1 = first try acked, 2 = one retransmit, ... the overflow bucket
#: collects frames that needed most of their retry budget.
ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 5.0, 9.0)


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmit schedule: exponential backoff with a cap.

    Attempt ``n`` (0-based) is retransmitted ``timeout_ms *
    backoff**n`` (clamped to ``max_timeout_ms``) after the previous
    transmission; after ``max_retries`` unacknowledged transmissions the
    frame expires and is surfaced through
    :meth:`ReliableEndpoint.take_expired`.
    """

    timeout_ms: float = 200.0
    backoff: float = 2.0
    max_timeout_ms: float = 3_000.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0.0:
            raise TransportError("timeout_ms must be positive")
        if self.backoff < 1.0:
            raise TransportError("backoff must be >= 1")
        if self.max_timeout_ms < self.timeout_ms:
            raise TransportError("max_timeout_ms must be >= timeout_ms")
        if self.max_retries < 0:
            raise TransportError("max_retries must be non-negative")

    def delay_ms(self, attempt: int) -> float:
        """Backoff delay after the ``attempt``-th transmission (0-based)."""
        return min(self.timeout_ms * self.backoff ** attempt,
                   self.max_timeout_ms)


@dataclass
class _InFlight:
    frame: Frame
    due_ms: float
    attempts: int = 1


@dataclass(frozen=True)
class ReceiveResult:
    """What one incoming frame produced.

    ``ack`` is a frame the caller must transmit back (None for ACK
    frames and frames not addressed to this peer); ``deliver`` is True
    when the payload should be handed to the protocol handler;
    ``duplicate`` marks an already-seen sequence number (re-acked, not
    re-delivered).
    """

    ack: Frame | None = None
    deliver: bool = False
    duplicate: bool = False


class ReliableEndpoint:
    """Per-peer ARQ state: outgoing window, dedup index, ack plumbing."""

    def __init__(self, peer_id: int,
                 policy: RetryPolicy | None = None,
                 registry: Registry | None = None,
                 nonce: int = 0) -> None:
        self.peer_id = peer_id
        self.policy = policy or RetryPolicy()
        self.registry = registry if registry is not None else Registry()
        self.nonce = nonce
        self._next_seq: dict[int, int] = {}
        self._in_flight: dict[tuple[int, int], _InFlight] = {}
        self._seen: dict[tuple[int, int], set[int]] = {}
        self._expired: list[Frame] = []
        self._c_retransmits = self.registry.counter("runtime.retransmits")
        self._c_duplicates = self.registry.counter(
            "runtime.duplicates_suppressed")
        self._c_expired = self.registry.counter("runtime.expired")
        self._c_acks = self.registry.counter("runtime.acks_sent")
        self._h_attempts = self.registry.histogram(
            "runtime.arq.attempts", bounds=ATTEMPT_BUCKETS)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def package(self, recipient: int, payload: object,
                kind: MessageKind | None, now_ms: float,
                span: SpanContext | None = None) -> Frame:
        """Wrap one payload into a sequenced DATA frame and track it.

        The returned frame must be transmitted by the caller; it stays
        in the in-flight window until its ack arrives or it expires.
        ``span`` stamps the frame's causal span header: retransmissions
        reuse the stored frame, so one logical send keeps one span no
        matter how many times it crosses the wire.
        """
        seq = self._next_seq.get(recipient, 0)
        self._next_seq[recipient] = seq + 1
        frame = Frame(
            frame_type=DATA,
            sender=self.peer_id,
            recipient=recipient,
            seq=seq,
            kind=kind.value if kind is not None else "",
            sent_at_ms=now_ms,
            payload=payload,
            nonce=self.nonce,
            span=span,
        )
        self._in_flight[(recipient, seq)] = _InFlight(
            frame=frame, due_ms=now_ms + self.policy.delay_ms(0))
        return frame

    def due_retransmits(self, now_ms: float) -> list[Frame]:
        """Frames whose retransmit timer elapsed; re-arms their timers.

        Frames past ``max_retries`` transmissions move to the expired
        list instead (collect with :meth:`take_expired`).
        """
        due: list[Frame] = []
        for key in list(self._in_flight):
            entry = self._in_flight[key]
            if entry.due_ms > now_ms:
                continue
            if entry.attempts > self.policy.max_retries:
                del self._in_flight[key]
                self._expired.append(entry.frame)
                self._c_expired.inc()
                self._h_attempts.observe(float(entry.attempts))
                continue
            entry.due_ms = now_ms + self.policy.delay_ms(entry.attempts)
            entry.attempts += 1
            self._c_retransmits.inc()
            due.append(entry.frame)
        return due

    def next_due_ms(self) -> float | None:
        """Earliest retransmit deadline, or None with an empty window."""
        if not self._in_flight:
            return None
        return min(entry.due_ms for entry in self._in_flight.values())

    def unacked(self) -> int:
        """Frames still awaiting acknowledgement."""
        return len(self._in_flight)

    def unacked_to(self, recipient: int) -> int:
        """In-flight frames addressed to one recipient (the per-peer
        ARQ window an ops probe or a crash-purge assertion reads)."""
        return sum(1 for key in self._in_flight if key[0] == recipient)

    def take_expired(self) -> list[Frame]:
        """Drain frames that exhausted their retransmit budget."""
        expired, self._expired = self._expired, []
        return expired

    def forget_peer(self, peer_id: int) -> int:
        """Drop all ARQ state tied to ``peer_id`` (it crashed).

        Purges in-flight frames addressed to it (nothing will ever ack
        them), its dedup sets across every incarnation, and the outgoing
        sequence counter.  Returns the number of in-flight frames
        abandoned.
        """
        abandoned = [key for key in self._in_flight if key[0] == peer_id]
        for key in abandoned:
            del self._in_flight[key]
        for key in [k for k in self._seen if k[0] == peer_id]:
            del self._seen[key]
        self._next_seq.pop(peer_id, None)
        return len(abandoned)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame, now_ms: float) -> ReceiveResult:
        """Advance the state machine with one incoming frame."""
        if frame.frame_type == ACK:
            if frame.nonce == self.nonce:
                entry = self._in_flight.pop(
                    (frame.sender, frame.seq), None)
                if entry is not None:
                    self._h_attempts.observe(float(entry.attempts))
            return ReceiveResult()
        if frame.recipient != self.peer_id:
            return ReceiveResult()  # stray datagram; drop silently
        ack = Frame(
            frame_type=ACK,
            sender=frame.recipient,
            recipient=frame.sender,
            seq=frame.seq,
            sent_at_ms=now_ms,
            nonce=frame.nonce,
        )
        self._c_acks.inc()
        seen = self._seen.setdefault((frame.sender, frame.nonce), set())
        if frame.seq in seen:
            self._c_duplicates.inc()
            return ReceiveResult(ack=ack, deliver=False, duplicate=True)
        seen.add(frame.seq)
        return ReceiveResult(ack=ack, deliver=True)

"""Simulator adapter for the transport seam.

:class:`SimTransport` wraps the deterministic event-driven pair
(:class:`~repro.sim.messaging.MessageNetwork`,
:class:`~repro.sim.engine.Simulator`) behind the
:class:`~repro.runtime.transport.Transport` interface.

Every method is a **pure delegation**: no extra tracer records, no rng
draws, no reordered calls.  That is a hard contract — the conformance
suite (``tests/test_transport_conformance.py``) pins same-seed trace
digests against values captured before the seam existed, so anything
this adapter adds or skips shows up as a digest mismatch.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from ..obs.registry import Registry
from ..obs.tracer import SpanContext, Tracer
from ..overlay.messages import MessageKind
from ..sim.engine import Simulator
from ..sim.messaging import MessageNetwork
from .transport import Handler, TimerHandle, Transport


class SimTransport(Transport):
    """The discrete-event substrate of the transport seam."""

    __slots__ = ("network",)

    def __init__(self, network: MessageNetwork) -> None:
        self.network = network

    # ------------------------------------------------------------------
    # Pass-through surfaces
    # ------------------------------------------------------------------
    @property
    def simulator(self) -> Simulator:
        """The virtual-time engine driving this transport."""
        return self.network.simulator

    @property
    def tracer(self) -> Optional[Tracer]:
        """The network's tracer (None when tracing is off)."""
        return self.network.tracer

    @property
    def registry(self) -> Registry:
        """The network's metric registry."""
        return self.network.registry

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.network.simulator.now

    def register(self, peer_id: int, handler: Handler) -> None:
        """Delegates to :meth:`MessageNetwork.register`."""
        self.network.register(peer_id, handler)

    def unregister(self, peer_id: int) -> None:
        """Delegates to :meth:`MessageNetwork.unregister`."""
        self.network.unregister(peer_id)

    def is_registered(self, peer_id: int) -> bool:
        """Delegates to :meth:`MessageNetwork.is_registered`."""
        return self.network.is_registered(peer_id)

    def send(self, sender: int, recipient: int, payload: object,
             kind: MessageKind | None = None) -> None:
        """Delegates to :meth:`MessageNetwork.send` (latency, loss,
        fault injection and span chaining all live there, untouched)."""
        self.network.send(sender, recipient, payload, kind)

    def broadcast(self, sender: int, recipients: list[int],
                  payload: object, kind: MessageKind | None = None) -> None:
        """Delegates to :meth:`MessageNetwork.broadcast`."""
        self.network.broadcast(sender, recipients, payload, kind)

    def arm_timer(self, delay_ms: float,
                  action: Callable[[], None]) -> TimerHandle:
        """Delegates to :meth:`Simulator.schedule`; the scheduled
        :class:`~repro.sim.engine.Event` is the cancellable handle."""
        return self.network.simulator.schedule(delay_ms, action)

    @contextmanager
    def span_scope(self, span: Optional[SpanContext]) -> Iterator[None]:
        """Delegates to :meth:`MessageNetwork.span_scope`."""
        with self.network.span_scope(span):
            yield

"""Per-peer introspection payloads for the live operations plane.

A running cluster is only operable if an operator can ask any peer
"what do *you* think is going on?" without stopping it.  The ``OPS``
datagram kind carries an :class:`OpsRequest` probe; the probed
:class:`~repro.runtime.node.PeerRuntime` answers with an
:class:`OpsReply` snapshot of its local view — per-group upstream and
child counts, its transport incarnation, how long ago it last heard
from each neighbor, and how many frames its ARQ window still holds.
Both payloads ride the ordinary reliable DATA path (framed, acked,
retransmitted), so the ops plane observes the cluster through the same
wire it is diagnosing.

Ops traffic is deliberately **not** part of the logical protocol
vocabulary: :data:`~repro.runtime.conformance.LOGICAL_KINDS` excludes
it, so probing a cluster never perturbs a conformance transcript.

The field encodings are wire-friendly on purpose (flat tuples of
numbers, ``-1`` for "no upstream"), matching the canonical-JSON frame
codec's tuple coercion on decode.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Index layout of one group row inside :attr:`OpsReply.groups`.
#: Rows travel as plain tuples (``upstream`` is -1 when unset,
#: booleans as 0/1) because the frame codec round-trips nested tuples,
#: not nested dataclasses.
GROUP_ROW_FIELDS = ("group_id", "upstream", "on_tree", "is_member",
                    "children")


@dataclass(frozen=True)
class OpsRequest:
    """Probe one peer for its local operational view.

    ``probe_id`` correlates replies when a console polls many peers in
    one sweep; it is minted by the prober and echoed back verbatim.
    """

    probe_id: int


@dataclass(frozen=True)
class OpsReply:
    """One peer's answer: its complete local operational view.

    ``groups`` holds one row per group this peer has protocol state
    for, laid out per :data:`GROUP_ROW_FIELDS` (``upstream`` is ``-1``
    when unset, booleans travel as 0/1).  ``last_seen`` is
    ``(peer_id, age_ms)`` pairs — how long before ``at_ms`` this peer
    last delivered a frame from each neighbor (its heartbeat view).
    ``unacked`` is the peer's in-flight ARQ window size at reply time.
    """

    peer_id: int
    probe_id: int
    incarnation: int
    at_ms: float
    unacked: int
    groups: tuple[tuple[int, int, int, int, int], ...] = ()
    last_seen: tuple[tuple[int, float], ...] = ()

    def group_row(self, group_id: int
                  ) -> tuple[int, int, int, int, int] | None:
        """The row for ``group_id``, or None if the peer never saw it."""
        for row in self.groups:
            if row[0] == group_id:
                return row
        return None

"""The runtime package: one protocol codebase, two substrates.

``repro.runtime`` is the seam that lets the *identical* protocol code
(:mod:`repro.groupcast.session`, :mod:`repro.overlay.maintenance`) run
both inside the deterministic discrete-event simulator and over real
asyncio UDP sockets:

* :class:`Transport` — the send/recv/timer/clock interface every
  event-driven protocol path targets;
* :class:`SimTransport` — pure pass-through adapter over the simulator
  fabric (same-seed runs stay bit-identical to pre-seam dispatch);
* :class:`AsyncioTransport` — UDP loopback fabric with datagram
  framing, per-peer sequence numbers and retransmit-until-ack;
* :class:`RuntimeCluster` / :class:`PeerRuntime` / :class:`LocalView`
  — per-peer hosting of the session node class over a live transport;
* :mod:`~repro.runtime.conformance` — the canonicalizing comparator
  that checks live episodes against their simulated twins;
* :mod:`~repro.runtime.ops` — the per-peer introspection vocabulary
  (:class:`OpsRequest` / :class:`OpsReply`) behind
  :meth:`RuntimeCluster.ops_survey` and the ops console example.
"""

from .asyncio_transport import AsyncioTransport
from .cluster import RuntimeCluster
from .conformance import (
    ConformanceError,
    EpisodeTranscript,
    assert_equivalent,
    compare,
    transcript_from_cluster,
    transcript_from_session,
)
from .faulty import FaultyTransport
from .framing import (
    ACK,
    DATA,
    MAX_FRAME_BYTES,
    PAYLOAD_TYPES,
    Frame,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
)
from .node import LocalView, PeerRuntime
from .ops import GROUP_ROW_FIELDS, OpsReply, OpsRequest
from .reliability import ReceiveResult, ReliableEndpoint, RetryPolicy
from .sim import SimTransport
from .transport import (
    AsyncioTimers,
    Handler,
    SimTimers,
    TimerHandle,
    Transport,
)

__all__ = [
    "ACK",
    "DATA",
    "MAX_FRAME_BYTES",
    "PAYLOAD_TYPES",
    "AsyncioTimers",
    "AsyncioTransport",
    "ConformanceError",
    "EpisodeTranscript",
    "FaultyTransport",
    "Frame",
    "GROUP_ROW_FIELDS",
    "Handler",
    "LocalView",
    "OpsReply",
    "OpsRequest",
    "PeerRuntime",
    "ReceiveResult",
    "ReliableEndpoint",
    "RetryPolicy",
    "RuntimeCluster",
    "SimTimers",
    "SimTransport",
    "TimerHandle",
    "Transport",
    "assert_equivalent",
    "compare",
    "decode_frame",
    "decode_payload",
    "encode_frame",
    "encode_payload",
    "transcript_from_cluster",
    "transcript_from_session",
]

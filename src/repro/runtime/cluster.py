"""A loopback cluster of live protocol peers.

:class:`RuntimeCluster` is the live counterpart of
:class:`~repro.groupcast.session.GroupSession`: it hosts one
:class:`~repro.runtime.node.PeerRuntime` per overlay peer on a shared
:class:`~repro.runtime.asyncio_transport.AsyncioTransport`, each with
only its :class:`~repro.runtime.node.LocalView` of the overlay.  The
protocol entry points (``advertise`` / ``subscribe`` / ``publish``)
mirror the session API, but nothing here drains a simulator — tests
wait on real time with :meth:`settle` (transport quiescence) and
:meth:`wait_until` (deadline-polled predicates) instead of sleeping
fixed amounts.

Crash/restart mirrors the session semantics: a crashed peer's socket
closes silently (senders retransmit into the void until their ARQ
budget expires) and a restarted peer comes back with blank protocol
state.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Callable, Iterable, Optional

from ..config import AnnouncementConfig, UtilityConfig
from ..errors import TransportError
from ..obs.registry import Registry
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind
from ..sim.random import spawn_rng
from .asyncio_transport import AsyncioTransport, LatencyFn
from .node import LocalView, PeerRuntime
from .ops import OpsReply, OpsRequest
from .reliability import RetryPolicy


class RuntimeCluster:
    """N live peers over one asyncio UDP transport."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        seed: int,
        announcement: Optional[AnnouncementConfig] = None,
        utility: Optional[UtilityConfig] = None,
        latency_fn: Optional[LatencyFn] = None,
        policy: Optional[RetryPolicy] = None,
        registry: Optional[Registry] = None,
        host: str = "127.0.0.1",
        faults=None,
    ) -> None:
        self.overlay = overlay
        self.seed = seed
        self.announcement = announcement or AnnouncementConfig()
        self.utility = utility or UtilityConfig()
        self.registry = registry if registry is not None else Registry()
        self.transport = AsyncioTransport(
            host=host, policy=policy, latency_fn=latency_fn,
            registry=self.registry)
        if faults is not None:
            self.transport.inject_faults(faults)
        self.peers: dict[int, PeerRuntime] = {}
        self.crashed: set[int] = set()
        self.rendezvous: dict[int, int] = {}
        self._payload_ids = itertools.count(1)
        self._probe_ids = itertools.count(1)
        # Delivery records salvaged from crashed peers, keyed
        # (group_id, payload_id) -> {peer_id: delivered_at_ms}.  The
        # sim session's delivery log survives crashes (it is the
        # experimenter's ledger, not protocol state); the cluster's
        # must too for the conformance transcripts to line up.
        self._delivery_archive: dict[tuple[int, int], dict[int, float]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _local_view(self, peer_id: int) -> LocalView:
        return LocalView(
            self.overlay.peer(peer_id),
            [self.overlay.peer(n)
             for n in self.overlay.neighbors(peer_id)])

    async def start(self) -> None:
        """Bind the transport and bring every overlay peer online."""
        await self.transport.start()
        for peer_id in self.overlay.peer_ids():
            await self._start_peer(peer_id)

    async def _start_peer(self, peer_id: int) -> None:
        runtime = PeerRuntime(
            self._local_view(peer_id), self.transport,
            self.announcement, self.utility,
            spawn_rng(self.seed, "runtime-peer", peer_id))
        self.peers[peer_id] = runtime
        # The runtime's own handle wrapper, not node.handle: it layers
        # liveness tracking and ops interception over the state machine.
        await self.transport.start_peer(peer_id, runtime.handle)

    async def stop(self) -> None:
        """Take the whole cluster down.

        Delivery records move to the archive first — the delivery log
        is the experimenter's ledger, and post-mortem readers (the live
        report's lag table, the experiment summary) consult it after
        the sockets are gone.
        """
        await self.transport.close()
        for runtime in self.peers.values():
            for key, records in runtime.deliveries.items():
                self._delivery_archive.setdefault(key, {}).update(records)
        self.peers.clear()

    async def __aenter__(self) -> "RuntimeCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    async def crash(self, peer_id: int) -> None:
        """Silence one peer: socket closed, no goodbye traffic."""
        if peer_id not in self.peers:
            raise TransportError(f"peer {peer_id} is not in the cluster")
        await self.transport.stop_peer(peer_id)
        runtime = self.peers.pop(peer_id)
        for key, records in runtime.deliveries.items():
            self._delivery_archive.setdefault(key, {}).update(records)
        self.crashed.add(peer_id)

    async def restart(self, peer_id: int) -> None:
        """Bring a crashed peer back with blank protocol state."""
        if peer_id in self.peers:
            raise TransportError(f"peer {peer_id} is already running")
        self.crashed.discard(peer_id)
        await self._start_peer(peer_id)

    # ------------------------------------------------------------------
    # Protocol entry points (the GroupSession vocabulary)
    # ------------------------------------------------------------------
    def advertise(self, group_id: int, rendezvous: int,
                  scheme: str = "nssa") -> None:
        """Seed the announcement at the rendezvous peer."""
        if rendezvous not in self.peers:
            raise TransportError(
                f"rendezvous {rendezvous} is not running")
        self.rendezvous[group_id] = rendezvous
        self.peers[rendezvous].node.start_advertisement(group_id, scheme)

    def subscribe(self, group_id: int, members: Iterable[int]) -> None:
        """Start the subscription at each running member."""
        for member in members:
            runtime = self.peers.get(member)
            if runtime is None:
                continue
            runtime.node.start_subscription(group_id)

    def publish(self, group_id: int, source: int) -> int:
        """Flood one payload from ``source``; returns its payload id."""
        runtime = self.peers.get(source)
        if runtime is None:
            raise TransportError(f"source {source} is not running")
        payload_id = next(self._payload_ids)
        runtime.node.start_publish(group_id, payload_id)
        return payload_id

    def rejoin(self, group_id: int, member: int) -> None:
        """Reset a member's branch state and re-run its subscription."""
        runtime = self.peers.get(member)
        if runtime is None:
            raise TransportError(f"peer {member} is not running")
        runtime.reset_group(group_id)
        runtime.node.start_subscription(group_id)

    # ------------------------------------------------------------------
    # Waiting (deadline-based; never a bare sleep in tests)
    # ------------------------------------------------------------------
    async def settle(self, timeout_s: float) -> bool:
        """Wait until the transport goes quiescent (all frames acked,
        all paced deliveries handed over) or the deadline passes."""
        return await self.transport.wait_quiescent(timeout_s)

    async def wait_until(self, predicate: Callable[[], bool],
                         timeout_s: float,
                         interval_s: float = 0.02) -> bool:
        """Poll ``predicate`` until true or the deadline passes."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            if predicate():
                return True
            await asyncio.sleep(interval_s)
        return predicate()

    # ------------------------------------------------------------------
    # Introspection (cluster-side aggregation of per-peer state)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> dict[int, object]:
        """Running protocol nodes by peer id.

        The duck-typed surface a :class:`~repro.obs.topology.
        TopologyRecorder` reads (``watch_cluster``): same shape as
        ``GroupSession.nodes``, restricted to live peers.
        """
        return {peer_id: runtime.node
                for peer_id, runtime in self.peers.items()}

    def broken_upstream_peers(self, group_id: int) -> set[int]:
        """On-tree peers whose upstream crashed or fell off the tree.

        The live analogue of ``GroupSession.broken_upstream_peers``:
        the set of peers whose branch needs repair, which the orphan /
        broken-upstream watchdogs read through the recorder.
        """
        broken = set()
        rendezvous = self.rendezvous.get(group_id)
        for peer_id, runtime in self.peers.items():
            if peer_id == rendezvous:
                continue
            state = runtime.node.groups.get(group_id)
            if state is None or not state.on_tree \
                    or state.upstream is None:
                continue
            upstream = self.peers.get(state.upstream)
            if upstream is None:
                broken.add(peer_id)
                continue
            up_state = upstream.node.groups.get(group_id)
            if up_state is None or not up_state.on_tree:
                broken.add(peer_id)
        return broken

    async def ops_survey(self, observer: Optional[int] = None,
                         timeout_s: float = 5.0
                         ) -> dict[int, OpsReply]:
        """Probe every running peer over the wire; returns their views.

        ``observer`` (default: the lowest running peer id) sends one
        :class:`~repro.runtime.ops.OpsRequest` to each other peer and
        collects the :class:`~repro.runtime.ops.OpsReply` datagrams;
        its own view is read locally.  Replies that miss the deadline
        are simply absent from the result — an operator's console must
        render a partial cluster rather than hang on it.
        """
        if not self.peers:
            return {}
        if observer is None:
            observer = min(self.peers)
        prober = self.peers.get(observer)
        if prober is None:
            raise TransportError(f"observer {observer} is not running")
        probe_id = next(self._probe_ids)
        targets = [peer_id for peer_id in sorted(self.peers)
                   if peer_id != observer]
        for target in targets:
            self.transport.send(observer, target, OpsRequest(probe_id),
                                MessageKind.OPS)
        await self.wait_until(
            lambda: all((probe_id, target) in prober.ops_replies
                        for target in targets),
            timeout_s)
        replies = {target: prober.ops_replies[(probe_id, target)]
                   for target in targets
                   if (probe_id, target) in prober.ops_replies}
        replies[observer] = prober.ops_view(probe_id)
        return dict(sorted(replies.items()))

    def members_on_tree(self, group_id: int) -> set[int]:
        """Running members whose subscription completed."""
        members = set()
        for peer_id, runtime in self.peers.items():
            state = runtime.node.groups.get(group_id)
            if state is not None and state.on_tree and state.is_member:
                members.add(peer_id)
        return members

    def tree_edges(self, group_id: int) -> set[tuple[int, int]]:
        """``(child, parent)`` pairs of the live spanning tree."""
        edges = set()
        for peer_id, runtime in self.peers.items():
            state = runtime.node.groups.get(group_id)
            if state is not None and state.on_tree \
                    and state.upstream is not None:
                edges.add((peer_id, state.upstream))
        return edges

    def deliveries(self, group_id: int,
                   payload_id: int) -> dict[int, float]:
        """Peer → delivery time (ms) for one payload, across peers
        (including records salvaged from since-crashed peers)."""
        merged = dict(
            self._delivery_archive.get((group_id, payload_id), {}))
        for runtime in self.peers.values():
            merged.update(
                runtime.deliveries.get((group_id, payload_id), {}))
        return merged

    def delivery_log(self) -> dict[tuple[int, int], dict[int, float]]:
        """Every (group, payload) delivery record, archive included."""
        merged: dict[tuple[int, int], dict[int, float]] = {
            key: dict(records)
            for key, records in self._delivery_archive.items()}
        for runtime in self.peers.values():
            for key, records in runtime.deliveries.items():
                merged.setdefault(key, {}).update(records)
        return merged

"""The transport seam: one interface, two execution substrates.

Every event-driven protocol path in this repository — advertisement
floods, reverse-path subscriptions, ripple searches, payload
dissemination, heartbeat maintenance — issues its sends and arms its
timers exclusively through a :class:`Transport`.  The *identical*
protocol code then runs on two substrates:

* :class:`~repro.runtime.sim.SimTransport` adapts the deterministic
  discrete-event :class:`~repro.sim.messaging.MessageNetwork` /
  :class:`~repro.sim.engine.Simulator` pair.  It is a pure pass-through:
  same rng draws, same tracer records, same event sequence numbers —
  same-seed runs are bit-identical to pre-seam dispatch, which is what
  lets the sim act as the runtime's conformance oracle.
* :class:`~repro.runtime.asyncio_transport.AsyncioTransport` carries the
  same sends over real UDP datagram sockets with framing, per-peer
  sequence numbers and retransmit-until-ack reliability.

The interface is deliberately small.  ``send`` is fire-and-forget at
the protocol layer (reliability lives *below* the seam, in the
transport), handlers receive :class:`~repro.sim.messaging.Envelope`
objects on both substrates, and timers return cancellable handles so
protocol layers can disarm them when a peer crashes or departs.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Protocol, runtime_checkable

from ..obs.tracer import SpanContext, Tracer
from ..overlay.messages import MessageKind
from ..sim.engine import Simulator
from ..sim.messaging import Envelope

#: A registered peer's message callback.
Handler = Callable[[Envelope], None]


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable armed timer.

    Both substrates return one from :meth:`Transport.arm_timer`:
    the simulator's :class:`~repro.sim.engine.Event` (lazy-deletion
    ``cancel``) and asyncio's ``loop.call_later`` handle satisfy it
    structurally.
    """

    def cancel(self) -> None:  # pragma: no cover - protocol signature
        ...


class Transport(abc.ABC):
    """Send/receive/timer/clock surface the protocol layers run on."""

    #: Optional tracer; protocol code opens episode root spans on it.
    tracer: Optional[Tracer]

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def now(self) -> float:
        """Current transport time in milliseconds.

        Virtual time on the simulator substrate, monotonic wall-clock
        (relative to transport start) on the asyncio substrate.
        """

    # ------------------------------------------------------------------
    # Peers
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def register(self, peer_id: int, handler: Handler) -> None:
        """Attach a peer's message handler (replaces any previous one)."""

    @abc.abstractmethod
    def unregister(self, peer_id: int) -> None:
        """Detach a departed peer; in-flight messages to it dead-letter."""

    @abc.abstractmethod
    def is_registered(self, peer_id: int) -> bool:
        """True if the peer currently receives messages."""

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(self, sender: int, recipient: int, payload: object,
             kind: MessageKind | None = None) -> None:
        """Hand one message to the transport (fire-and-forget)."""

    def broadcast(self, sender: int, recipients: list[int],
                  payload: object, kind: MessageKind | None = None) -> None:
        """Send the same payload to several recipients (unicast copies)."""
        for recipient in recipients:
            self.send(sender, recipient, payload, kind)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def arm_timer(self, delay_ms: float,
                  action: Callable[[], None]) -> TimerHandle:
        """Run ``action`` after ``delay_ms``; returns a cancellable handle."""

    # ------------------------------------------------------------------
    # Causality
    # ------------------------------------------------------------------
    @contextmanager
    def span_scope(self, span: Optional[SpanContext]) -> Iterator[None]:
        """Run a block with ``span`` as the ambient causal parent.

        The base implementation is a no-op scope; substrates that
        propagate spans through their fabric override it.
        """
        yield


class SimTimers:
    """Minimal timer/clock seam over a bare :class:`Simulator`.

    Protocol layers that schedule but never message (the heartbeat
    maintenance daemon) arm their timers through this adapter instead of
    touching the simulator directly, so the same code can later ride an
    asyncio clock.  Pure pass-through: ``arm_timer`` is exactly
    ``Simulator.schedule`` and consumes the same sequence numbers.
    """

    __slots__ = ("simulator",)

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.simulator.now

    def arm_timer(self, delay_ms: float,
                  action: Callable[[], None]) -> TimerHandle:
        """Schedule ``action`` on the simulator; the event is the handle."""
        return self.simulator.schedule(delay_ms, action)


class AsyncioTimers:
    """The asyncio counterpart of :class:`SimTimers`.

    Milliseconds in, ``loop.call_later`` underneath; ``now()`` is
    wall-clock milliseconds since construction so protocol timestamps
    stay small and comparable with virtual-time traces.
    """

    __slots__ = ("_loop", "_epoch")

    def __init__(self, loop=None) -> None:
        import asyncio

        self._loop = loop if loop is not None else \
            asyncio.get_event_loop()
        self._epoch = self._loop.time()

    def now(self) -> float:
        """Milliseconds since this timer surface was created."""
        return (self._loop.time() - self._epoch) * 1_000.0

    def arm_timer(self, delay_ms: float,
                  action: Callable[[], None]) -> TimerHandle:
        """Arm a callback on the running loop; the asyncio handle
        (which has ``cancel``) is returned as-is."""
        return self._loop.call_later(delay_ms / 1_000.0, action)

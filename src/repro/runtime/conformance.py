"""Canonicalizing conformance oracle between the two substrates.

Bit-identity is only meaningful on the deterministic substrate: same
seed, same :class:`~repro.runtime.sim.SimTransport` episode, same trace
digest (``tests/test_transport_conformance.py`` pins those).  A live
asyncio run can never be bit-identical — the OS scheduler reorders
wire-level events — but it must be **logically equivalent**: same
spanning-tree shape, same member reachability, same per-kind logical
message counts, same payload delivery sets, all modulo reordering.

:class:`EpisodeTranscript` is the canonical form both substrates reduce
to.  Everything in it is sorted; timestamps and wire-level chatter
(acks, retransmits — the ``runtime.*`` counters) are deliberately
excluded, so a transcript hashes to the same digest no matter how the
underlying events interleaved.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..errors import ReproError
from ..overlay.messages import MessageKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..groupcast.session import GroupSession
    from .cluster import RuntimeCluster


class ConformanceError(ReproError):
    """A live episode diverged logically from its simulated twin."""


#: Message kinds that count as *logical* protocol traffic.  Transport
#: chatter (acks, retransmits) lives under ``runtime.*`` and never
#: enters a transcript.
LOGICAL_KINDS: tuple[MessageKind, ...] = (
    MessageKind.ADVERTISEMENT,
    MessageKind.SUBSCRIPTION,
    MessageKind.SUBSCRIPTION_SEARCH,
    MessageKind.SEARCH_RESPONSE,
    MessageKind.PAYLOAD,
)


@dataclass(frozen=True)
class EpisodeTranscript:
    """Order-free canonical record of one protocol episode."""

    group_id: int
    rendezvous: int
    members: tuple[int, ...]
    tree_edges: tuple[tuple[int, int], ...]
    kind_counts: tuple[tuple[str, int], ...]
    deliveries: tuple[tuple[int, tuple[int, ...]], ...]

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form."""
        canonical = json.dumps(
            {
                "group_id": self.group_id,
                "rendezvous": self.rendezvous,
                "members": list(self.members),
                "tree_edges": [list(edge) for edge in self.tree_edges],
                "kind_counts": [list(kc) for kc in self.kind_counts],
                "deliveries": [[pid, list(peers)]
                               for pid, peers in self.deliveries],
            },
            separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _kind_counts(registry) -> tuple[tuple[str, int], ...]:
    counts = []
    for kind in LOGICAL_KINDS:
        value = registry.counter(f"messages.{kind.value}").value
        counts.append((kind.value, value))
    return tuple(sorted(counts))


def transcript_from_session(session: "GroupSession",
                            group_id: int) -> EpisodeTranscript:
    """Canonicalize one simulated episode."""
    view = session.tree_view(group_id)
    edges = sorted(
        (int(child), int(parent))
        for child, parent, on_tree in zip(
            view.ids, view.upstream_id, view.on_tree)
        if on_tree and parent >= 0)
    deliveries = sorted(
        (payload_id, tuple(sorted(int(p) for p in receivers)))
        for (gid, payload_id), receivers in session.deliveries.items()
        if gid == group_id)
    return EpisodeTranscript(
        group_id=group_id,
        rendezvous=session.rendezvous.get(group_id, -1),
        members=tuple(sorted(session.members_on_tree(group_id))),
        tree_edges=tuple(edges),
        kind_counts=_kind_counts(session.registry),
        deliveries=tuple(deliveries),
    )


def transcript_from_cluster(cluster: "RuntimeCluster",
                            group_id: int) -> EpisodeTranscript:
    """Canonicalize one live loopback episode."""
    edges = sorted(cluster.tree_edges(group_id))
    merged: dict[int, set[int]] = {}
    for (gid, payload_id), receivers in cluster.delivery_log().items():
        if gid == group_id:
            merged.setdefault(payload_id, set()).update(receivers)
    deliveries = sorted(
        (payload_id, tuple(sorted(receivers)))
        for payload_id, receivers in merged.items())
    return EpisodeTranscript(
        group_id=group_id,
        rendezvous=cluster.rendezvous.get(group_id, -1),
        members=tuple(sorted(cluster.members_on_tree(group_id))),
        tree_edges=tuple(edges),
        kind_counts=_kind_counts(cluster.registry),
        deliveries=tuple(deliveries),
    )


def compare(expected: EpisodeTranscript, actual: EpisodeTranscript,
            kinds: Sequence[MessageKind] = LOGICAL_KINDS,
            check_deliveries: bool = True) -> list[str]:
    """Differences between two canonical transcripts (empty = same).

    ``kinds`` narrows the message-count comparison — searches, for
    instance, race wall-clock timing (first reply wins), so episodes
    that legitimately use them can exclude those kinds while still
    holding tree shape and reachability exact.
    """
    differences: list[str] = []
    if expected.group_id != actual.group_id:
        differences.append(
            f"group_id: {expected.group_id} != {actual.group_id}")
    if expected.rendezvous != actual.rendezvous:
        differences.append(
            f"rendezvous: {expected.rendezvous} != {actual.rendezvous}")
    if expected.members != actual.members:
        differences.append(
            f"members: {expected.members} != {actual.members}")
    if expected.tree_edges != actual.tree_edges:
        missing = set(expected.tree_edges) - set(actual.tree_edges)
        extra = set(actual.tree_edges) - set(expected.tree_edges)
        differences.append(
            f"tree_edges: missing={sorted(missing)} extra={sorted(extra)}")
    wanted = {kind.value for kind in kinds}
    expected_counts = {k: v for k, v in expected.kind_counts
                       if k in wanted}
    actual_counts = {k: v for k, v in actual.kind_counts if k in wanted}
    if expected_counts != actual_counts:
        differences.append(
            f"kind_counts: {expected_counts} != {actual_counts}")
    if check_deliveries and expected.deliveries != actual.deliveries:
        differences.append(
            f"deliveries: {expected.deliveries} != {actual.deliveries}")
    return differences


def assert_equivalent(expected: EpisodeTranscript,
                      actual: EpisodeTranscript,
                      kinds: Sequence[MessageKind] = LOGICAL_KINDS,
                      check_deliveries: bool = True) -> None:
    """Raise :class:`ConformanceError` when the transcripts diverge."""
    differences = compare(expected, actual, kinds=kinds,
                          check_deliveries=check_deliveries)
    if differences:
        raise ConformanceError(
            "live episode diverged from the simulated twin:\n  "
            + "\n  ".join(differences))

"""Per-tenant SLO objectives, attainment tables and burn-rate watchdogs.

ROADMAP item 4 demands "per-tenant SLO attainment, not just per-run
averages".  This module is that scoreboard:

* :class:`SLOSpec` — declarative per-tenant objectives: minimum
  delivery ratio, maximum p99 delivery delay, and a repair-convergence
  deadline (how long a tenant may sit out of compliance before the
  repair itself is the incident).
* :class:`AttainmentTable` — per-tenant attainment computed from a
  :class:`~repro.core.parallel.GroupPassResult`'s dimensional columns
  with segmented ``bincount`` reductions (O(tenants), never a
  per-peer-group Python loop), with worst-N ordering, an attainment
  CDF, and a canonical byte encoding that is identical for any
  shard/worker count.
* :class:`SLOBurnRule` — a :class:`~repro.obs.watchdog.WatchdogRule`
  that turns topology snapshots into windowed error-budget burn rates
  per tenant and rides the existing record/warn/halt action machinery,
  so an SLO breach can kill a run exactly like any other watchdog.
  Per-tenant incident counts go to a bounded-cardinality
  :class:`~repro.obs.registry.MetricFamily` on the engine's registry.
* :class:`SLOEngine` — the convenience bundle the experiments runner,
  :class:`~repro.obs.live.LiveTelemetry` and the ops console share.

Burn rate is the standard error-budget form: with a delivery objective
of ``r`` the budget is ``1 - r``; a tenant failing a fraction ``f`` of
its members burns at ``f / (1 - r)``.  Burn 1.0 spends the budget
exactly; the default threshold 2.0 fires at twice that pace.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..errors import TelemetryError
from .dims import DEFAULT_SKETCH_LAYOUT, SketchLayout, sketch_quantiles
from .watchdog import WatchdogRule

__all__ = [
    "AttainmentTable",
    "SLOBurnRule",
    "SLOEngine",
    "SLOSpec",
]


@dataclass(frozen=True)
class SLOSpec:
    """Declarative per-tenant objectives.

    ``None`` disables an objective.  ``window`` is the number of
    consecutive topology snapshots a burn-rate judgement averages over;
    ``burn_threshold`` is the multiple of budget-neutral pace at which
    the watchdog fires.
    """

    min_delivery_ratio: Optional[float] = 0.99
    max_p99_delay_ms: Optional[float] = None
    max_repair_ms: Optional[float] = None
    window: int = 4
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        ratio = self.min_delivery_ratio
        if ratio is not None and not (0.0 < ratio <= 1.0):
            raise TelemetryError(
                f"min_delivery_ratio must be in (0, 1], got {ratio}")
        if self.max_p99_delay_ms is not None \
                and self.max_p99_delay_ms <= 0.0:
            raise TelemetryError("max_p99_delay_ms must be positive")
        if self.max_repair_ms is not None and self.max_repair_ms <= 0.0:
            raise TelemetryError("max_repair_ms must be positive")
        if self.window < 1:
            raise TelemetryError("window must be >= 1")
        if self.burn_threshold <= 0.0:
            raise TelemetryError("burn_threshold must be positive")

    @property
    def error_budget(self) -> float:
        """Tolerated failure fraction (0.0 when no delivery objective)."""
        if self.min_delivery_ratio is None:
            return 0.0
        return 1.0 - self.min_delivery_ratio

    def burn_rate(self, bad: float, total: float) -> float:
        """Error-budget burn multiple for ``bad`` failures of ``total``.

        Budget-neutral pace is 1.0; with a zero budget any failure
        burns infinitely fast.
        """
        if total <= 0.0 or bad <= 0.0:
            return 0.0
        rate = bad / total
        budget = self.error_budget
        if budget <= 0.0:
            return float("inf")
        return rate / budget

    def to_dict(self) -> dict:
        return {
            "min_delivery_ratio": self.min_delivery_ratio,
            "max_p99_delay_ms": self.max_p99_delay_ms,
            "max_repair_ms": self.max_repair_ms,
            "window": self.window,
            "burn_threshold": self.burn_threshold,
        }


class AttainmentTable:
    """Per-tenant SLO attainment from one (or more merged) batch passes.

    Rows are integer-exact: member and delivery counts come from
    segmented ``bincount`` reductions over the pass's dense columns and
    p99 delays from the integer sketch rows, so the canonical byte
    encoding is identical no matter how groups were sharded or how many
    workers folded their partial results.
    """

    def __init__(self, spec: SLOSpec, tenants: np.ndarray,
                 groups: np.ndarray, members: np.ndarray,
                 delivered: np.ndarray, depth: np.ndarray,
                 p99_ms: np.ndarray | None) -> None:
        self.spec = spec
        self.tenants = tenants
        self.groups = groups
        self.members = members
        self.delivered = delivered
        self.depth = depth
        self.p99_ms = p99_ms

    # ------------------------------------------------------------------
    @classmethod
    def from_pass(cls, result, spec: SLOSpec,
                  tenant_of_group: np.ndarray | None = None,
                  layout: SketchLayout = DEFAULT_SKETCH_LAYOUT,
                  ) -> "AttainmentTable":
        """Segmented per-tenant reduction of a ``GroupPassResult``.

        ``tenant_of_group`` maps each group row to a tenant id; omitted,
        every group is its own tenant.  p99 columns appear only when the
        pass ran with dimensional telemetry (``delay_cells`` non-empty).
        """
        n_groups = result.n_groups
        if tenant_of_group is None:
            tenants = np.arange(n_groups, dtype=np.int64)
        else:
            tenants = np.asarray(tenant_of_group, dtype=np.int64)
            if tenants.shape != (n_groups,):
                raise TelemetryError(
                    f"tenant map covers {tenants.shape[0]} groups, "
                    f"pass has {n_groups}")
        n_tenants = int(tenants.max()) + 1 if n_groups else 0
        groups = np.bincount(tenants, minlength=n_tenants)
        members = np.bincount(
            tenants, weights=result.member_counts,
            minlength=n_tenants).astype(np.int64)
        delivered = np.bincount(
            tenants, weights=result.members_on_tree,
            minlength=n_tenants).astype(np.int64)
        depth = np.zeros(n_tenants, dtype=np.int64)
        np.maximum.at(depth, tenants, result.depth)
        p99 = None
        if result.delay_cells.shape[1]:
            cells = np.zeros((n_tenants, result.delay_cells.shape[1]),
                             dtype=np.int64)
            np.add.at(cells, tenants, result.delay_cells)
            p99 = sketch_quantiles(cells, 0.99, layout)
        return cls(spec, np.arange(n_tenants, dtype=np.int64), groups,
                   members, delivered, depth, p99)

    # ------------------------------------------------------------------
    @property
    def n_tenants(self) -> int:
        return self.tenants.shape[0]

    def delivery_ratio(self) -> np.ndarray:
        """Delivered / members per tenant (1.0 for empty tenants)."""
        members = self.members
        return np.where(members > 0, self.delivered /
                        np.maximum(members, 1), 1.0)

    def attained(self) -> np.ndarray:
        """Boolean per-tenant attainment against every set objective."""
        ok = np.ones(self.n_tenants, dtype=bool)
        if self.spec.min_delivery_ratio is not None:
            ok &= self.delivery_ratio() >= self.spec.min_delivery_ratio
        if self.spec.max_p99_delay_ms is not None \
                and self.p99_ms is not None:
            ok &= (self.p99_ms <= self.spec.max_p99_delay_ms) \
                | (self.members == 0)
        return ok

    def rows(self) -> list[dict]:
        """One plain dict per tenant, in tenant order."""
        ratio = self.delivery_ratio()
        attained = self.attained()
        out = []
        for i in range(self.n_tenants):
            row = {
                "tenant": int(self.tenants[i]),
                "groups": int(self.groups[i]),
                "members": int(self.members[i]),
                "delivered": int(self.delivered[i]),
                "delivery_ratio": float(ratio[i]),
                "depth": int(self.depth[i]),
                "attained": bool(attained[i]),
            }
            if self.p99_ms is not None:
                p99 = float(self.p99_ms[i])
                row["p99_ms"] = p99 if np.isfinite(p99) else None
            out.append(row)
        return out

    def worst(self, n: int = 10) -> list[dict]:
        """The ``n`` worst tenants: lowest delivery ratio first, ties
        broken by higher p99, then tenant id — a total deterministic
        order."""
        def key(row: dict) -> tuple:
            p99 = row.get("p99_ms")
            return (row["delivery_ratio"],
                    -(p99 if p99 is not None else float("inf")),
                    row["tenant"])
        return sorted(self.rows(), key=key)[:max(0, int(n))]

    def attainment_cdf(
        self, points: Sequence[float] = (0.5, 0.9, 0.95, 0.99, 1.0),
    ) -> dict:
        """Fraction of tenants at or above each delivery-ratio level,
        plus the overall attained fraction."""
        ratio = self.delivery_ratio()
        n = max(1, self.n_tenants)
        return {
            "attained_fraction": float(self.attained().sum() / n),
            "levels": {
                f"{p:g}": float((ratio >= p).sum() / n) for p in points
            },
        }

    def to_canonical_json(self) -> bytes:
        """Byte-exact encoding: the artifact CI compares across
        ``--jobs`` counts."""
        doc = {
            "spec": self.spec.to_dict(),
            "cdf": self.attainment_cdf(),
            "rows": self.rows(),
        }
        return json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("ascii")

    def summary(self) -> dict:
        """Report-facing roll-up (worst offenders + CDF)."""
        return {
            "spec": self.spec.to_dict(),
            "tenants": self.n_tenants,
            "attained": int(self.attained().sum()),
            "cdf": self.attainment_cdf(),
            "worst": self.worst(10),
        }


class SLOBurnRule(WatchdogRule):
    """Windowed per-tenant error-budget burn over topology snapshots.

    Every snapshot contributes one ``(orphans, members)`` observation
    per tenant, read from the recorder's ``tree.<gid>.members`` /
    ``tree.<gid>.orphans`` metrics (groups fold onto tenants through
    ``tenant_of_group``; unmapped groups are their own tenant).  The
    rule fires while any tenant's burn rate over the last
    ``spec.window`` snapshots meets ``spec.burn_threshold`` — or, with
    ``max_repair_ms`` set, while any tenant has been out of compliance
    longer than the repair deadline.  Firing rides the standard
    watchdog edge/action machinery, so ``action="halt"`` aborts the
    run like any other rule; per-tenant incident counts land in the
    bounded ``slo.burn.incidents`` counter family on the engine's
    registry.
    """

    def __init__(self, spec: SLOSpec,
                 tenant_of_group: Mapping[int, int] | None = None,
                 action: str = "record", name: str = "slo-burn",
                 max_tenant_series: int = 64) -> None:
        super().__init__(name, action)
        self.spec = spec
        self.tenant_of_group = dict(tenant_of_group or {})
        self.max_tenant_series = max_tenant_series
        self._windows: dict[int, deque] = {}
        self._violating: set[int] = set()
        self._violation_started: dict[int, float] = {}
        self.last_by_tenant: dict[int, dict] = {}

    # ------------------------------------------------------------------
    def _tenant_samples(self, metrics: Mapping[str, float]
                        ) -> dict[int, tuple[float, float]]:
        """Aggregate ``(orphans, members)`` per tenant from a snapshot."""
        samples: dict[int, list[float]] = {}
        for key, members in metrics.items():
            if not key.startswith("tree.") or not key.endswith(".members"):
                continue
            gid = int(key.split(".")[1])
            orphans = float(metrics.get(f"tree.{gid}.orphans", 0.0))
            tenant = self.tenant_of_group.get(gid, gid)
            entry = samples.setdefault(tenant, [0.0, 0.0])
            entry[0] += orphans
            entry[1] += float(members)
        return {tenant: (bad, total)
                for tenant, (bad, total) in samples.items()}

    def check(self, snapshot, recorder) -> Optional[str]:
        samples = self._tenant_samples(snapshot.metrics)
        if not samples:
            return None
        worst: tuple[float, int, str] | None = None
        messaging: set[int] = set()
        for tenant in sorted(samples):
            bad, total = samples[tenant]
            window = self._windows.setdefault(
                tenant, deque(maxlen=self.spec.window))
            window.append((bad, total))
            burn = self.spec.burn_rate(
                sum(b for b, _ in window), sum(t for _, t in window))
            ratio = 1.0 - (bad / total if total > 0.0 else 0.0)
            self.last_by_tenant[tenant] = {
                "burn": burn, "delivery_ratio": ratio,
                "orphans": bad, "members": total,
            }
            message = None
            if len(window) >= self.spec.window \
                    and burn >= self.spec.burn_threshold:
                message = (f"tenant {tenant} burning error budget at "
                           f"{burn:.1f}x over the last "
                           f"{len(window)} snapshots "
                           f"(delivery {ratio:.3f}, objective "
                           f"{self.spec.min_delivery_ratio})")
            out_of_compliance = bad > 0.0
            if out_of_compliance:
                started = self._violation_started.setdefault(
                    tenant, snapshot.at_ms)
                lateness = snapshot.at_ms - started
                if self.spec.max_repair_ms is not None \
                        and lateness > self.spec.max_repair_ms \
                        and message is None:
                    message = (
                        f"tenant {tenant} out of compliance for "
                        f"{lateness:.0f} ms (repair deadline "
                        f"{self.spec.max_repair_ms:.0f} ms)")
            else:
                self._violation_started.pop(tenant, None)
            if message is not None:
                messaging.add(tenant)
                if worst is None or burn > worst[0]:
                    worst = (burn, tenant, message)
        newly_violating = sorted(messaging - self._violating)
        engine = getattr(recorder, "watchdogs", None)
        if newly_violating and engine is not None:
            family = engine.registry.family(
                "slo.burn.incidents", ("tenant",), "counter",
                max_series=self.max_tenant_series)
            for tenant in newly_violating:
                family.labels(tenant).inc()
        self._violating = messaging
        if worst is None:
            return None
        return worst[2]

    def reset(self) -> None:
        self._windows.clear()
        self._violating.clear()
        self._violation_started.clear()

    # ------------------------------------------------------------------
    def tenant_states(self) -> list[dict]:
        """Last observed per-tenant burn states, worst first."""
        rows = [{"tenant": tenant, **state}
                for tenant, state in self.last_by_tenant.items()]
        rows.sort(key=lambda r: (-r["burn"], r["delivery_ratio"],
                                 r["tenant"]))
        return rows


class SLOEngine:
    """One spec, its burn-rate watchdog, and the latest attainment.

    The bundle the runner, :class:`~repro.obs.live.LiveTelemetry` and
    the ops console share: :meth:`rules` yields the watchdog rules to
    arm (they ride the existing engine), :meth:`observe_pass` folds a
    batch pass into an :class:`AttainmentTable`, and :meth:`summary`
    renders both sides for reports.
    """

    def __init__(self, spec: SLOSpec | None = None,
                 tenant_of_group: Mapping[int, int] | None = None,
                 layout: SketchLayout = DEFAULT_SKETCH_LAYOUT) -> None:
        self.spec = spec if spec is not None else SLOSpec()
        self.tenant_of_group = dict(tenant_of_group or {})
        self.layout = layout
        self.last_table: AttainmentTable | None = None
        self._burn_rules: list[SLOBurnRule] = []

    def rules(self, action: str = "record") -> list[WatchdogRule]:
        """The watchdog rules enforcing this spec (remembered so live
        burn state stays readable through the engine)."""
        rule = SLOBurnRule(self.spec, self.tenant_of_group,
                           action=action)
        self._burn_rules.append(rule)
        return [rule]

    def observe_pass(self, result,
                     tenant_of_group: np.ndarray | None = None,
                     ) -> AttainmentTable:
        """Fold one batch pass into the current attainment table."""
        self.last_table = AttainmentTable.from_pass(
            result, self.spec, tenant_of_group, self.layout)
        return self.last_table

    def tenant_states(self) -> list[dict]:
        """Merged live burn states from every armed rule, worst first."""
        merged: dict[int, dict] = {}
        for rule in self._burn_rules:
            merged.update(
                {row["tenant"]: row for row in rule.tenant_states()})
        rows = list(merged.values())
        rows.sort(key=lambda r: (-r["burn"], r["delivery_ratio"],
                                 r["tenant"]))
        return rows

    def summary(self) -> dict:
        """Report-facing roll-up of objectives, attainment and burn."""
        out: dict = {"spec": self.spec.to_dict()}
        if self.last_table is not None:
            out["attainment"] = self.last_table.summary()
        states = self.tenant_states()
        if states:
            out["burn"] = states[:10]
        return out

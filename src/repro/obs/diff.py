"""Structural and metric diffs over topology artifacts.

Compares what the :class:`~repro.obs.topology.TopologyRecorder`
captured — two snapshots of one run, two checkpoints replayed from the
delta stream, or two runs' exported JSON artifacts — and reduces the
difference to one ``drift`` number suitable for CI gating next to
:mod:`benchmarks.compare`:

* **structural drift** — symmetric set differences of peers, overlay
  links and per-group tree edges at matching epochs, plus any
  epoch/snapshot-count mismatch;
* **metric drift** — final-snapshot metrics whose values differ at all
  (runs are deterministic, so *any* difference between same-seed runs
  is a regression, not noise).

Because snapshots are delta-encoded, absolute states are rebuilt by
replaying the deltas (:func:`reconstruct_epochs` /
:func:`state_at`); the module therefore works on plain exported dicts
with no recorder in memory.

CLI::

    python -m repro.obs.diff out/topology.json out2/topology.json \
        --max-drift 0 --write out/topology_diff.json

exits 1 when the drift exceeds ``--max-drift`` — the self-consistency
gate in CI diffs two same-seed runs and requires zero drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..errors import TelemetryError


# ----------------------------------------------------------------------
# Delta replay
# ----------------------------------------------------------------------
def _edge(pair) -> tuple[int, int]:
    return (int(pair[0]), int(pair[1]))


def _apply_snapshot(state: dict, snapshot: dict) -> None:
    delta = snapshot["overlay_delta"]
    state["peers"].update(int(p) for p in delta["added_peers"])
    state["peers"].difference_update(
        int(p) for p in delta["removed_peers"])
    state["links"].update(_edge(l) for l in delta["added_links"])
    state["links"].difference_update(
        _edge(l) for l in delta["removed_links"])
    for tree_delta in snapshot["tree_deltas"]:
        group = int(tree_delta["group_id"])
        edges = state["trees"].setdefault(group, set())
        edges.update(_edge(e) for e in tree_delta["added_edges"])
        edges.difference_update(
            _edge(e) for e in tree_delta["removed_edges"])
    state["metrics"] = dict(snapshot["metrics"])
    state["snapshots"] += 1
    state["last_at_ms"] = float(snapshot["at_ms"])


def _fresh_state() -> dict:
    return {"peers": set(), "links": set(), "trees": {},
            "metrics": {}, "snapshots": 0, "last_at_ms": 0.0}


def reconstruct_epochs(artifact: dict) -> dict[int, dict]:
    """Replay an artifact's delta stream into absolute per-epoch states.

    Each state holds ``peers``/``links``/``trees`` sets, the metrics of
    the epoch's last snapshot, and the snapshot count — everything the
    structural diff consumes.
    """
    epochs: dict[int, dict] = {}
    for snapshot in artifact.get("snapshots", []):
        state = epochs.setdefault(int(snapshot["epoch"]),
                                  _fresh_state())
        _apply_snapshot(state, snapshot)
    return epochs


def state_at(artifact: dict, seq: int) -> dict:
    """Absolute state after replaying deltas up to snapshot ``seq``.

    Replays only the snapshots of ``seq``'s own epoch (earlier epochs
    watched different graphs).
    """
    snapshots = artifact.get("snapshots", [])
    target = next((s for s in snapshots if int(s["seq"]) == seq), None)
    if target is None:
        raise TelemetryError(f"no snapshot with seq {seq}")
    state = _fresh_state()
    for snapshot in snapshots:
        if int(snapshot["epoch"]) != int(target["epoch"]):
            continue
        _apply_snapshot(state, snapshot)
        if int(snapshot["seq"]) == seq:
            break
    return state


# ----------------------------------------------------------------------
# Diff results
# ----------------------------------------------------------------------
@dataclass
class EpochDiff:
    """Structural difference of one epoch between two states."""

    epoch: int
    peers_added: tuple[int, ...] = ()
    peers_removed: tuple[int, ...] = ()
    links_added: tuple[tuple[int, int], ...] = ()
    links_removed: tuple[tuple[int, int], ...] = ()
    tree_changes: dict[int, dict[str, list]] = field(
        default_factory=dict)
    snapshot_counts: tuple[int, int] = (0, 0)

    @property
    def structural_drift(self) -> int:
        drift = (len(self.peers_added) + len(self.peers_removed)
                 + len(self.links_added) + len(self.links_removed))
        for change in self.tree_changes.values():
            drift += len(change["added"]) + len(change["removed"])
        if self.snapshot_counts[0] != self.snapshot_counts[1]:
            drift += abs(self.snapshot_counts[0]
                         - self.snapshot_counts[1])
        return drift

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "peers_added": list(self.peers_added),
            "peers_removed": list(self.peers_removed),
            "links_added": [list(l) for l in self.links_added],
            "links_removed": [list(l) for l in self.links_removed],
            "tree_changes": {
                str(group): {"added": [list(e) for e in change["added"]],
                             "removed": [list(e)
                                         for e in change["removed"]]}
                for group, change in sorted(self.tree_changes.items())},
            "snapshot_counts": list(self.snapshot_counts),
            "structural_drift": self.structural_drift,
        }


@dataclass
class TopologyDiff:
    """Full diff of two topology artifacts (B relative to A)."""

    epochs: list[EpochDiff] = field(default_factory=list)
    metric_changes: list[dict] = field(default_factory=list)

    @property
    def structural_drift(self) -> int:
        """Total vertex/edge/snapshot-count differences."""
        return sum(epoch.structural_drift for epoch in self.epochs)

    @property
    def metric_drift(self) -> int:
        """Number of final-snapshot metrics whose values differ."""
        return len(self.metric_changes)

    @property
    def drift(self) -> int:
        """The gated scalar: structural + metric drift."""
        return self.structural_drift + self.metric_drift

    def to_dict(self) -> dict:
        return {
            "drift": self.drift,
            "structural_drift": self.structural_drift,
            "metric_drift": self.metric_drift,
            "epochs": [epoch.to_dict() for epoch in self.epochs],
            "metric_changes": list(self.metric_changes),
        }

    def render_markdown(self) -> str:
        lines = ["# Topology diff", "",
                 f"- structural drift: **{self.structural_drift}**",
                 f"- metric drift: **{self.metric_drift}**", ""]
        for epoch in self.epochs:
            if epoch.structural_drift == 0:
                continue
            lines.append(f"## Epoch {epoch.epoch} "
                         f"(drift {epoch.structural_drift})")
            lines.append("")
            if epoch.peers_added or epoch.peers_removed:
                lines.append(f"- peers: +{list(epoch.peers_added)} "
                             f"-{list(epoch.peers_removed)}")
            if epoch.links_added or epoch.links_removed:
                lines.append(f"- links: +{len(epoch.links_added)} "
                             f"-{len(epoch.links_removed)}")
            for group, change in sorted(epoch.tree_changes.items()):
                lines.append(f"- tree {group}: "
                             f"+{len(change['added'])} edges, "
                             f"-{len(change['removed'])} edges")
            if epoch.snapshot_counts[0] != epoch.snapshot_counts[1]:
                lines.append(f"- snapshot counts differ: "
                             f"{epoch.snapshot_counts[0]} vs "
                             f"{epoch.snapshot_counts[1]}")
            lines.append("")
        if self.metric_changes:
            lines += ["## Metric changes", "",
                      "| epoch | metric | a | b | delta |",
                      "|---|---|---|---|---|"]
            for change in self.metric_changes:
                lines.append(
                    f"| {change['epoch']} | {change['metric']} "
                    f"| {change['a']:g} | {change['b']:g} "
                    f"| {change['delta']:+g} |")
            lines.append("")
        if self.drift == 0:
            lines += ["No structural or metric drift.", ""]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def diff_states(state_a: dict, state_b: dict,
                epoch: int = 0) -> EpochDiff:
    """Structural diff of two absolute states (B relative to A)."""
    tree_changes: dict[int, dict[str, list]] = {}
    groups = set(state_a["trees"]) | set(state_b["trees"])
    for group in sorted(groups):
        edges_a = state_a["trees"].get(group, set())
        edges_b = state_b["trees"].get(group, set())
        added = sorted(edges_b - edges_a)
        removed = sorted(edges_a - edges_b)
        if added or removed:
            tree_changes[group] = {"added": added, "removed": removed}
    return EpochDiff(
        epoch=epoch,
        peers_added=tuple(sorted(state_b["peers"] - state_a["peers"])),
        peers_removed=tuple(sorted(state_a["peers"]
                                   - state_b["peers"])),
        links_added=tuple(sorted(state_b["links"] - state_a["links"])),
        links_removed=tuple(sorted(state_a["links"]
                                   - state_b["links"])),
        tree_changes=tree_changes,
        snapshot_counts=(state_a["snapshots"], state_b["snapshots"]),
    )


def _metric_changes(epoch: int, metrics_a: dict,
                    metrics_b: dict) -> list[dict]:
    changes = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        value_a = metrics_a.get(name)
        value_b = metrics_b.get(name)
        if value_a == value_b:
            continue
        changes.append({
            "epoch": epoch, "metric": name,
            "a": float(value_a) if value_a is not None else float("nan"),
            "b": float(value_b) if value_b is not None else float("nan"),
            "delta": (float(value_b) - float(value_a))
            if value_a is not None and value_b is not None
            else float("nan"),
        })
    return changes


def diff_artifacts(artifact_a: dict, artifact_b: dict) -> TopologyDiff:
    """Diff two exported recorder artifacts epoch by epoch."""
    epochs_a = reconstruct_epochs(artifact_a)
    epochs_b = reconstruct_epochs(artifact_b)
    diff = TopologyDiff()
    for epoch in sorted(set(epochs_a) | set(epochs_b)):
        state_a = epochs_a.get(epoch, _fresh_state())
        state_b = epochs_b.get(epoch, _fresh_state())
        diff.epochs.append(diff_states(state_a, state_b, epoch=epoch))
        diff.metric_changes.extend(
            _metric_changes(epoch, state_a["metrics"],
                            state_b["metrics"]))
    return diff


def diff_snapshots(artifact: dict, seq_a: int,
                   seq_b: int) -> TopologyDiff:
    """Diff two checkpoints of *one* run by replaying its deltas."""
    state_a = state_at(artifact, seq_a)
    state_b = state_at(artifact, seq_b)
    diff = TopologyDiff()
    epoch_diff = diff_states(state_a, state_b)
    # Checkpoint comparison: snapshot counts legitimately differ.
    epoch_diff.snapshot_counts = (0, 0)
    diff.epochs.append(epoch_diff)
    diff.metric_changes.extend(
        _metric_changes(0, state_a["metrics"], state_b["metrics"]))
    return diff


def diff_recorders(recorder_a, recorder_b) -> TopologyDiff:
    """Diff two live recorders (convenience over
    :func:`diff_artifacts`)."""
    return diff_artifacts(recorder_a.to_dict(), recorder_b.to_dict())


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------
def _load(path: Path) -> dict:
    data = json.loads(path.read_text(encoding="utf-8"))
    # Accept both a raw recorder artifact and a full report.json that
    # embeds one under its "topology" key.
    if "snapshots" not in data and "topology" in data:
        data = data["topology"]
    if "snapshots" not in data:
        raise TelemetryError(f"{path} is not a topology artifact")
    return data


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Diff two topology artifacts and gate on drift.")
    parser.add_argument("a", type=Path, help="baseline artifact JSON")
    parser.add_argument("b", type=Path, help="fresh artifact JSON")
    parser.add_argument(
        "--max-drift", type=int, default=None, metavar="N",
        help="exit 1 when structural+metric drift exceeds N")
    parser.add_argument(
        "--write", type=Path, default=None, metavar="PATH",
        help="write the diff as JSON to PATH")
    parser.add_argument(
        "--markdown", type=Path, default=None, metavar="PATH",
        help="write the diff as Markdown to PATH")
    args = parser.parse_args(argv)

    diff = diff_artifacts(_load(args.a), _load(args.b))
    if args.write is not None:
        args.write.parent.mkdir(parents=True, exist_ok=True)
        args.write.write_text(
            json.dumps(diff.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"wrote {args.write}")
    if args.markdown is not None:
        args.markdown.parent.mkdir(parents=True, exist_ok=True)
        args.markdown.write_text(diff.render_markdown(),
                                 encoding="utf-8")
        print(f"wrote {args.markdown}")
    print(f"structural drift {diff.structural_drift}, "
          f"metric drift {diff.metric_drift}")
    if args.max_drift is not None and diff.drift > args.max_drift:
        print(f"FAIL drift {diff.drift} exceeds "
              f"--max-drift {args.max_drift}")
        return 1
    print("drift within bounds" if args.max_drift is not None
          else "no gate requested")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

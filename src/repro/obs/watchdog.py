"""SLO-style anomaly watchdogs over topology snapshots.

A :class:`WatchdogEngine` evaluates a set of :class:`WatchdogRule`
detectors against every :class:`~repro.obs.topology.TopologySnapshot`
the :class:`~repro.obs.topology.TopologyRecorder` captures.  Rules are
*level-triggered with edge reporting*: a rule that starts violating
raises one ``fired`` :class:`Alert`, stays silently active while the
condition persists, and raises one ``cleared`` alert when the condition
goes away — so the alert stream reads as incident windows, not noise.

Built-in detectors map the fault-injection harness (PR 3) onto paper
semantics:

* :class:`OverlayPartition` — the unstructured overlay lost its single
  connected component (a :class:`~repro.faults.plan.PartitionWindow`
  severing links, or excessive churn);
* :class:`MetricSpike` (and the :func:`tree_depth_spike` /
  :func:`node_stress_spike` helpers) — a structural metric jumped
  against its own trailing window, e.g. tree depth after a bad repair;
* :class:`OrphanedMembers` — subscribed members without a tree path
  (crash orphans the recovery policy has not re-attached);
* :class:`ConservationGapGrowth` — the transport conservation identity
  keeps drifting (messages leaking, not just in flight);
* :class:`HeartbeatStaleness` — a maintenance view holds peers past
  the failure-detection threshold.

Every fired/cleared transition increments ``watchdog.*`` counters in
the engine's registry and — only when a tracer was *explicitly* given —
emits a ``watchdog`` trace record; with no tracer the engine is digest
bit-transparent like the recorder itself.  The ``action`` of a rule
selects what firing does: ``record`` (default) only collects the
alert, ``warn`` flags it for report rendering, ``halt`` raises
:class:`~repro.errors.WatchdogHalt` to abort the run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..errors import TelemetryError, WatchdogHalt
from .registry import Registry
from .tracer import KIND_WATCHDOG

#: Valid rule fire actions.
ACTIONS = ("record", "warn", "halt")


@dataclass(frozen=True)
class Alert:
    """One fired/cleared transition of a watchdog rule."""

    at_ms: float
    epoch: int
    rule: str
    kind: str  # "fired" | "cleared"
    message: str
    action: str

    def to_dict(self) -> dict:
        return {"at_ms": self.at_ms, "epoch": self.epoch,
                "rule": self.rule, "kind": self.kind,
                "message": self.message, "action": self.action}


class WatchdogRule:
    """Base detector: subclasses implement :meth:`check`.

    :meth:`check` returns a violation message while the condition
    holds and None otherwise; the engine turns level changes into
    alerts.  :meth:`reset` clears any trailing-window state when a new
    epoch starts (a fresh overlay must not be judged against the
    previous deployment's history).
    """

    def __init__(self, name: str, action: str = "record") -> None:
        if action not in ACTIONS:
            raise TelemetryError(
                f"watchdog action must be one of {ACTIONS}, "
                f"got {action!r}")
        self.name = name
        self.action = action

    def check(self, snapshot, recorder) -> Optional[str]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget trailing-window state (new epoch)."""


class OverlayPartition(WatchdogRule):
    """Fires while the overlay has more components than allowed or the
    largest component holds too small a fraction of the peers."""

    def __init__(self, max_components: int = 1,
                 min_largest_fraction: float = 1.0,
                 action: str = "record",
                 name: str = "overlay-partition") -> None:
        super().__init__(name, action)
        self.max_components = max_components
        self.min_largest_fraction = min_largest_fraction

    def check(self, snapshot, recorder) -> Optional[str]:
        components = snapshot.metrics.get("overlay.components")
        if components is None:
            return None
        if components > self.max_components:
            return (f"overlay split into {components:.0f} components "
                    f"(allowed {self.max_components})")
        fraction = snapshot.metrics.get(
            "overlay.largest_component_fraction")
        if fraction is not None \
                and fraction < self.min_largest_fraction:
            return (f"largest component holds {fraction:.2f} of peers "
                    f"(required {self.min_largest_fraction:.2f})")
        return None


class MetricSpike(WatchdogRule):
    """Fires when a metric exceeds ``factor`` times its trailing-window
    mean.

    The window holds the last ``window`` observed values *before* the
    current snapshot; at least ``min_history`` of them must exist
    before the rule judges anything (a cold start is not a spike).
    ``min_value`` suppresses firing below an absolute floor so tiny
    metrics (depth 1 → 2) do not alert.
    """

    def __init__(self, metric: str, factor: float = 2.0,
                 window: int = 5, min_history: int = 2,
                 min_value: float = 0.0, action: str = "record",
                 name: str | None = None) -> None:
        super().__init__(name or f"spike:{metric}", action)
        if factor <= 1.0:
            raise TelemetryError("spike factor must be > 1")
        if window < 1:
            raise TelemetryError("spike window must be >= 1")
        self.metric = metric
        self.factor = factor
        self.min_history = max(1, min_history)
        self.min_value = min_value
        self._history: deque[float] = deque(maxlen=window)

    def check(self, snapshot, recorder) -> Optional[str]:
        value = snapshot.metrics.get(self.metric)
        if value is None:
            return None
        message = None
        if len(self._history) >= self.min_history:
            baseline = sum(self._history) / len(self._history)
            if baseline > 0.0 and value >= self.min_value \
                    and value > baseline * self.factor:
                message = (f"{self.metric} = {value:g} is "
                           f"{value / baseline:.2f}x its trailing "
                           f"mean {baseline:g}")
        self._history.append(value)
        return message

    def reset(self) -> None:
        self._history.clear()


def tree_depth_spike(group_id: int, factor: float = 2.0,
                     window: int = 5, action: str = "record"
                     ) -> MetricSpike:
    """Spike detector on one group's spanning-tree depth."""
    return MetricSpike(f"tree.{group_id}.depth", factor=factor,
                       window=window, min_value=3.0, action=action)


def node_stress_spike(group_id: int, factor: float = 2.0,
                      window: int = 5, action: str = "record"
                      ) -> MetricSpike:
    """Spike detector on one group's mean forwarding fan-out."""
    return MetricSpike(f"tree.{group_id}.node_stress", factor=factor,
                       window=window, min_value=2.0, action=action)


class OrphanedMembers(WatchdogRule):
    """Fires while subscribed members sit off their spanning tree.

    With ``group_id=None`` the rule scans every ``tree.<gid>.orphans``
    metric in the snapshot, so it needs no advance knowledge of the
    group ids a run will establish.
    """

    def __init__(self, group_id: int | None = None,
                 max_orphans: int = 0, action: str = "record",
                 name: str = "orphaned-members") -> None:
        super().__init__(name, action)
        self.group_id = group_id
        self.max_orphans = max_orphans

    def check(self, snapshot, recorder) -> Optional[str]:
        if self.group_id is not None:
            keys = [f"tree.{self.group_id}.orphans"]
        else:
            keys = [key for key in snapshot.metrics
                    if key.startswith("tree.")
                    and key.endswith(".orphans")]
        worst: tuple[float, str] | None = None
        for key in keys:
            orphans = snapshot.metrics.get(key)
            if orphans is not None and orphans > self.max_orphans \
                    and (worst is None or orphans > worst[0]):
                worst = (orphans, key)
        if worst is None:
            return None
        orphans, key = worst
        group = key.split(".")[1]
        return (f"group {group} has {orphans:.0f} members off the "
                f"tree (allowed {self.max_orphans})")


class ConservationGapGrowth(WatchdogRule):
    """Fires when the transport conservation gap grows monotonically.

    A nonzero gap is normal while messages are in flight; a gap that
    *keeps growing* across ``window`` consecutive snapshots by at
    least ``min_growth`` total means messages are leaking (lost
    without a ``net.lost``/``faults.*`` account).
    """

    def __init__(self, window: int = 4, min_growth: float = 1.0,
                 action: str = "record",
                 name: str = "conservation-gap-growth") -> None:
        super().__init__(name, action)
        if window < 2:
            raise TelemetryError("growth window must be >= 2")
        self.min_growth = min_growth
        self._history: deque[float] = deque(maxlen=window)

    def check(self, snapshot, recorder) -> Optional[str]:
        gap = snapshot.metrics.get("conservation.gap")
        if gap is None:
            return None
        self._history.append(gap)
        if len(self._history) < self._history.maxlen:
            return None
        values = list(self._history)
        rising = all(later > earlier for earlier, later
                     in zip(values, values[1:]))
        growth = values[-1] - values[0]
        if rising and growth >= self.min_growth:
            return (f"conservation gap grew {growth:g} over the last "
                    f"{len(values)} snapshots (now {gap:g})")
        return None

    def reset(self) -> None:
        self._history.clear()


class HeartbeatStaleness(WatchdogRule):
    """Fires while a maintenance heartbeat view violates its failure
    detector (wraps :func:`repro.faults.invariants.
    check_heartbeat_view`).

    The daemon/overlay pair comes from the rule itself or, when
    omitted, from what the recorder watches
    (:meth:`~repro.obs.topology.TopologyRecorder.watch_maintenance`).
    """

    def __init__(self, maintenance=None, overlay=None,
                 action: str = "record",
                 name: str = "heartbeat-staleness") -> None:
        super().__init__(name, action)
        self._maintenance = maintenance
        self._overlay = overlay

    def check(self, snapshot, recorder) -> Optional[str]:
        maintenance = self._maintenance or recorder.maintenance
        overlay = self._overlay or recorder.overlay
        if maintenance is None or overlay is None:
            return None
        from ..faults.invariants import check_heartbeat_view

        violations = check_heartbeat_view(maintenance, overlay)
        if not violations:
            return None
        return (f"{len(violations)} stale heartbeat view entries "
                f"(first: {violations[0]})")


class WatchdogEngine:
    """Evaluates rules at every snapshot and tracks incident windows.

    One engine belongs to one :class:`~repro.obs.topology.
    TopologyRecorder` (created lazily by ``add_watchdog``).  Firing
    state resets at epoch boundaries — each watched deployment is its
    own incident timeline — while the alert history spans the whole
    run.
    """

    def __init__(self, registry: Optional[Registry] = None,
                 tracer=None) -> None:
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.alerts: list[Alert] = []
        self._rules: list[WatchdogRule] = []
        self._active: dict[str, str] = {}
        self._c_fired = self.registry.counter("watchdog.fired")
        self._c_cleared = self.registry.counter("watchdog.cleared")

    @property
    def rules(self) -> tuple[WatchdogRule, ...]:
        return tuple(self._rules)

    def add(self, rule: WatchdogRule) -> None:
        if any(existing.name == rule.name for existing in self._rules):
            raise TelemetryError(
                f"duplicate watchdog rule name {rule.name!r}")
        self._rules.append(rule)

    def new_epoch(self) -> None:
        """Drop firing state and trailing windows (fresh deployment)."""
        self._active.clear()
        for rule in self._rules:
            rule.reset()

    def evaluate(self, snapshot, recorder) -> list[Alert]:
        """Check every rule against ``snapshot``; returns new alerts.

        Raises :class:`~repro.errors.WatchdogHalt` after collecting
        all of the snapshot's transitions when a firing rule carries
        the ``halt`` action.
        """
        new_alerts: list[Alert] = []
        halt: Alert | None = None
        for rule in self._rules:
            message = rule.check(snapshot, recorder)
            active = rule.name in self._active
            if message is not None and not active:
                alert = Alert(snapshot.at_ms, snapshot.epoch,
                              rule.name, "fired", message, rule.action)
                self._active[rule.name] = message
                self._record(alert)
                new_alerts.append(alert)
                if rule.action == "halt":
                    halt = alert
            elif message is None and active:
                alert = Alert(snapshot.at_ms, snapshot.epoch,
                              rule.name, "cleared",
                              self._active.pop(rule.name),
                              rule.action)
                self._record(alert)
                new_alerts.append(alert)
        self.alerts.extend(new_alerts)
        if halt is not None:
            raise WatchdogHalt(
                f"watchdog {halt.rule!r} halted the run at "
                f"{halt.at_ms:.1f} ms: {halt.message}")
        return new_alerts

    def _record(self, alert: Alert) -> None:
        counter = self._c_fired if alert.kind == "fired" \
            else self._c_cleared
        counter.inc()
        self.registry.counter(
            f"watchdog.{alert.rule}.{alert.kind}").inc()
        if self.tracer is not None:
            self.tracer.record(alert.at_ms, KIND_WATCHDOG,
                               detail=f"{alert.rule}:{alert.kind}")

    # ------------------------------------------------------------------
    def active_rules(self) -> list[str]:
        """Names of rules currently in a firing window, sorted."""
        return sorted(self._active)

    def fired(self, rule: str | None = None,
              epoch: int | None = None) -> list[Alert]:
        """``fired`` alerts, optionally filtered by rule name/epoch."""
        return [alert for alert in self.alerts
                if alert.kind == "fired"
                and (rule is None or alert.rule == rule)
                and (epoch is None or alert.epoch == epoch)]

    def cleared(self, rule: str | None = None,
                epoch: int | None = None) -> list[Alert]:
        """``cleared`` alerts, optionally filtered by rule name/epoch."""
        return [alert for alert in self.alerts
                if alert.kind == "cleared"
                and (rule is None or alert.rule == rule)
                and (epoch is None or alert.epoch == epoch)]

    def summary(self) -> dict:
        """Roll-up dict for the ``watchdog`` report section."""
        by_rule: dict[str, dict[str, int]] = {}
        for alert in self.alerts:
            entry = by_rule.setdefault(alert.rule,
                                       {"fired": 0, "cleared": 0})
            entry[alert.kind] += 1
        return {
            "rules": [rule.name for rule in self._rules],
            "fired": sum(1 for a in self.alerts if a.kind == "fired"),
            "cleared": sum(1 for a in self.alerts
                           if a.kind == "cleared"),
            "active": self.active_rules(),
            "by_rule": dict(sorted(by_rule.items())),
            "alerts": [alert.to_dict()
                       for alert in self.alerts[:50]],
            "warnings": [alert.to_dict() for alert in self.alerts
                         if alert.action == "warn"
                         and alert.kind == "fired"][:20],
        }


def default_watchdogs(group_ids: tuple[int, ...] = (),
                      action: str = "record") -> list[WatchdogRule]:
    """The standard detector pack the runner's ``--watchdogs`` installs.

    Partition, orphan and conservation detectors need no group
    knowledge; per-group spike detectors are added for each id in
    ``group_ids`` (sessions established later still feed the wildcard
    orphan rule).
    """
    rules: list[WatchdogRule] = [
        OverlayPartition(action=action),
        OrphanedMembers(action=action),
        ConservationGapGrowth(action=action),
        HeartbeatStaleness(action=action),
    ]
    for group_id in group_ids:
        rules.append(tree_depth_spike(group_id, action=action))
        rules.append(node_stress_spike(group_id, action=action))
    return rules

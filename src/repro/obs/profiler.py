"""Virtual-time metric sampling and wall-clock phase timing.

The registry (PR 1) answers "how much, in total"; this module answers
"when".  A :class:`Profiler` rides the simulator's clock — the engine
calls :meth:`Profiler.on_advance` as virtual time advances — and samples
every instrument of a :class:`~repro.obs.registry.Registry` on a fixed
virtual-time cadence into typed :class:`TimeSeries`: counters as
cumulative values (per-interval deltas derived on demand), gauges as
levels, histograms as count/mean plus quantiles estimated from the
bucket counts.

Sampling deliberately does **not** schedule simulator events: a
scheduled sampler would consume event sequence numbers and shift every
later trace record, breaking ``trace_digest`` bit-transparency.  Riding
the run loop instead costs one attribute check per event when no
profiler is attached and nothing else — the digest is untouched either
way, because the profiler only *reads* the clock and the registry.

The module also provides wall-clock *phase timers* for the real-time
cost of heavy host-side work (engine dispatch, routing-core bulk solves,
fault-injection hooks).  ``with phase_timer("routing.solve"):`` is a
shared no-op object when no default profiler is installed, so
instrumented hot paths pay one global read when profiling is off.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import TelemetryError
from .registry import Gauge, Histogram, Registry

#: Quantiles sampled from histograms on every cadence tick.
QUANTILES = (0.5, 0.9, 0.99)


@dataclass(frozen=True)
class HistogramSample:
    """One cadence sample of a histogram instrument."""

    at_ms: float
    count: int
    mean: float
    quantiles: tuple[float, ...]  # aligned with :data:`QUANTILES`


class TimeSeries:
    """Cadence samples of one instrument.

    ``kind`` is ``counter``/``gauge``/``histogram``.  Counter and gauge
    points are ``(at_ms, value)`` pairs; histogram points are
    :class:`HistogramSample` rows.
    """

    __slots__ = ("name", "kind", "points")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self.points: list = []

    def __len__(self) -> int:
        return len(self.points)

    def deltas(self) -> list[tuple[float, float]]:
        """Per-interval increments ``(interval_end_ms, delta)``.

        Meaningful for counters (activity per interval); for gauges it
        is the level change, for histograms the new-sample count.
        """
        if self.kind == "histogram":
            values = [(p.at_ms, float(p.count)) for p in self.points]
        else:
            values = [(at, float(v)) for at, v in self.points]
        return [(at, value - prev_value)
                for (_, prev_value), (at, value)
                in zip(values, values[1:])]

    def summary(self) -> dict[str, object]:
        """Compact roll-up for reports."""
        out: dict[str, object] = {
            "name": self.name, "kind": self.kind,
            "samples": len(self.points)}
        if not self.points:
            return out
        if self.kind == "histogram":
            last = self.points[-1]
            out["count"] = last.count
            out["mean"] = last.mean
            for q, value in zip(QUANTILES, last.quantiles):
                out[f"p{int(q * 100)}"] = value
            return out
        values = [float(v) for _, v in self.points]
        out["first"] = values[0]
        out["last"] = values[-1]
        if self.kind == "counter":
            out["total_delta"] = values[-1] - values[0]
            deltas = [d for _, d in self.deltas()]
            out["max_interval_delta"] = max(deltas) if deltas else 0.0
        else:  # gauge
            out["min"] = min(values)
            out["max"] = max(values)
        return out

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly full series."""
        if self.kind == "histogram":
            points = [
                {"at_ms": p.at_ms, "count": p.count, "mean": p.mean,
                 **{f"p{int(q * 100)}": v
                    for q, v in zip(QUANTILES, p.quantiles)}}
                for p in self.points]
        else:
            points = [{"at_ms": at, "value": v} for at, v in self.points]
        return {"name": self.name, "kind": self.kind, "points": points}


def histogram_quantile(bounds: Sequence[float],
                       bucket_counts: Sequence[int],
                       q: float) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    Linear interpolation inside the bucket holding the quantile rank;
    samples in the overflow bucket clamp to the last finite edge (the
    histogram carries no upper bound for them).
    """
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(bucket_counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if i >= len(bounds):  # overflow bucket
                return float(bounds[-1])
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            upper = float(bounds[i])
            fraction = (rank - cumulative) / count
            return lower + fraction * (upper - lower)
        cumulative += count
    return float(bounds[-1])


class Profiler:
    """Samples a registry on a fixed virtual-time cadence.

    Attach with ``simulator.profiler = profiler`` (or pass it to the
    experiment runner via ``--report``); the engine calls
    :meth:`on_advance` as its clock moves.  One sample is taken per
    crossed cadence boundary — when several boundaries pass with no
    intervening event the registry cannot have changed, so only the
    latest boundary is materialized.

    Wall-clock phases are independent of virtual time:
    :meth:`phase` times a block with ``time.perf_counter`` and
    accumulates per-name call counts and seconds.

    The sampler is clock-agnostic: ``on_advance`` feeds it virtual
    time, but attaching a ``clock`` (e.g. ``AsyncioTransport.now``)
    lets a live telemetry pump call :meth:`tick` to sample at the wall
    clock through the exact same cadence/dedup machinery.
    """

    def __init__(self, registry: Registry,
                 interval_ms: float = 250.0,
                 enabled: bool = True,
                 clock=None) -> None:
        if interval_ms <= 0.0:
            raise TelemetryError("profiler interval must be positive")
        self.registry = registry
        self.interval_ms = interval_ms
        self.enabled = enabled
        self.clock = clock
        self._series: dict[str, TimeSeries] = {}
        self._next_sample_ms = 0.0
        self._last_sampled_ms: float | None = None
        self._phases: dict[str, list[float]] = {}  # name -> [calls, secs]

    # ------------------------------------------------------------------
    # Virtual-time sampling
    # ------------------------------------------------------------------
    def on_advance(self, now_ms: float) -> None:
        """Engine hook: the virtual clock is about to reach ``now_ms``."""
        if not self.enabled or now_ms < self._next_sample_ms:
            return
        # Materialize only the latest crossed boundary; the skipped ones
        # would repeat identical values (no event fired in between).
        # The engine calls on_advance *before* firing the event, so a
        # sample landing exactly on an event time sees the pre-event
        # registry state.
        at_ms = int(now_ms / self.interval_ms) * self.interval_ms
        self.sample(at_ms)
        self._next_sample_ms = at_ms + self.interval_ms

    def sample(self, at_ms: float) -> None:
        """Take one sample of every instrument, stamped ``at_ms``."""
        if self._last_sampled_ms is not None \
                and at_ms <= self._last_sampled_ms:
            return
        self._last_sampled_ms = at_ms
        for name in self.registry.names():
            instrument = self.registry.get(name)
            if isinstance(instrument, Histogram):
                series = self._series_for(name, "histogram")
                counts = instrument.bucket_counts()
                series.points.append(HistogramSample(
                    at_ms=at_ms,
                    count=instrument.count,
                    mean=instrument.mean,
                    quantiles=tuple(
                        histogram_quantile(instrument.bounds, counts, q)
                        for q in QUANTILES)))
            elif isinstance(instrument, Gauge):
                series = self._series_for(name, "gauge")
                series.points.append((at_ms, instrument.value))
            else:  # Counter
                series = self._series_for(name, "counter")
                series.points.append((at_ms, instrument.value))

    def tick(self) -> float:
        """Sample at the attached clock's current time; returns it.

        The live-pump entry point: a telemetry task with no virtual
        clock calls ``tick()`` each period and the profiler stamps the
        sample with transport wall-clock time.
        """
        if self.clock is None:
            raise TelemetryError("profiler has no clock attached")
        at_ms = float(self.clock())
        if self.enabled:
            self.sample(at_ms)
        return at_ms

    def finish(self, now_ms: float) -> None:
        """Take a final closing sample at the run's end time."""
        if self.enabled:
            self.sample(now_ms)

    def _series_for(self, name: str, kind: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name, kind)
            self._series[name] = series
        return series

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def series(self, name: str) -> Optional[TimeSeries]:
        """The series for one instrument, or None if never sampled."""
        return self._series.get(name)

    def all_series(self) -> list[TimeSeries]:
        """Every captured series, sorted by instrument name."""
        return [self._series[name] for name in sorted(self._series)]

    # ------------------------------------------------------------------
    # Wall-clock phases
    # ------------------------------------------------------------------
    def phase(self, name: str) -> "_PhaseTimer":
        """Context manager timing one wall-clock phase occurrence."""
        return _PhaseTimer(self, name)

    def add_phase_time(self, name: str, seconds: float) -> None:
        """Accumulate one timed occurrence of ``name``."""
        entry = self._phases.get(name)
        if entry is None:
            self._phases[name] = [1.0, seconds]
        else:
            entry[0] += 1.0
            entry[1] += seconds

    def phase_stats(self) -> dict[str, dict[str, float]]:
        """``{phase: {calls, total_s, mean_ms}}`` wall-clock roll-up."""
        out: dict[str, dict[str, float]] = {}
        for name in sorted(self._phases):
            calls, seconds = self._phases[name]
            out[name] = {
                "calls": calls,
                "total_s": seconds,
                "mean_ms": 1000.0 * seconds / calls if calls else 0.0,
            }
        return out


class _PhaseTimer:
    """Times one ``with`` block into a profiler phase."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: Profiler, name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.add_phase_time(
            self._name, time.perf_counter() - self._start)


class _NoopTimer:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_TIMER = _NoopTimer()

#: Process-wide profiler used by the module-level :func:`phase_timer`
#: helper in hot paths that cannot thread a profiler argument through.
_default_profiler: Optional[Profiler] = None


def get_default_profiler() -> Optional[Profiler]:
    """The process-wide profiler (None unless installed)."""
    return _default_profiler


def set_default_profiler(profiler: Optional[Profiler]
                         ) -> Optional[Profiler]:
    """Install ``profiler`` as the default; returns the previous one."""
    global _default_profiler
    previous = _default_profiler
    _default_profiler = profiler
    return previous


def enable_profiling(registry: Registry,
                     interval_ms: float = 250.0) -> Profiler:
    """Install and return a fresh default profiler over ``registry``."""
    profiler = Profiler(registry, interval_ms=interval_ms)
    set_default_profiler(profiler)
    return profiler


def disable_profiling() -> None:
    """Remove the default profiler; :func:`phase_timer` goes no-op."""
    set_default_profiler(None)


def phase_timer(name: str):
    """Wall-clock timer for ``name`` against the default profiler.

    Returns a shared no-op context manager when no default profiler is
    installed, so instrumented hot paths cost one global read when
    profiling is off.
    """
    profiler = _default_profiler
    if profiler is None:
        return _NOOP_TIMER
    return profiler.phase(name)

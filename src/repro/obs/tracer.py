"""Deterministic structured trace capture for the event simulator.

A :class:`Tracer` hooks the hot spots of the runtime —
:meth:`repro.sim.engine.Simulator.schedule` / ``run`` and
:meth:`repro.sim.messaging.MessageNetwork.send` / ``_deliver`` — and
emits one :class:`TraceRecord` per action: virtual time, record kind,
the peer pair involved and the message kind.  Records land in a bounded
ring buffer (old records fall off; memory stays flat on long runs) while
a running SHA-256 over the *complete* record stream feeds
:meth:`Tracer.trace_digest`.

Because the simulator breaks timestamp ties by insertion sequence and
every random draw flows through seeded :class:`~repro.sim.random.
RandomSource` streams, two identically-seeded runs must produce
byte-identical traces — ``trace_digest()`` turns that into a one-line
regression assertion (see ``tests/test_obs.py``).
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

#: Record kinds emitted by the built-in hooks.
KIND_SCHEDULE = "schedule"
KIND_FIRE = "fire"
KIND_SEND = "send"
KIND_LOST = "lost"
KIND_DELIVER = "deliver"
KIND_DEAD_LETTER = "dead_letter"

#: Record kinds emitted by the fault-injection layer (:mod:`repro.faults`).
KIND_FAULT_DROP = "fault_drop"
KIND_FAULT_DUPLICATE = "fault_duplicate"
KIND_FAULT_DELAY = "fault_delay"
KIND_FAULT_REORDER = "fault_reorder"
KIND_PARTITION_DROP = "partition_drop"
KIND_PARTITION_START = "partition_start"
KIND_PARTITION_HEAL = "partition_heal"
KIND_CRASH = "crash"
KIND_RESTART = "restart"


@dataclass(frozen=True)
class TraceRecord:
    """One traced action inside the simulated runtime.

    ``a``/``b`` are peer ids for transport records (sender/recipient)
    and unused (-1) for engine records; ``seq`` is the engine's event
    sequence number for ``schedule``/``fire`` records; ``detail`` holds
    the message kind value or the scheduled firing time.
    """

    at_ms: float
    kind: str
    seq: int = -1
    a: int = -1
    b: int = -1
    detail: str = ""

    def canonical(self) -> str:
        """Stable one-line encoding, the unit hashed by the digest."""
        return (f"{self.at_ms!r}|{self.kind}|{self.seq}"
                f"|{self.a}|{self.b}|{self.detail}")

    def to_json(self) -> str:
        """JSON object with deterministic key order."""
        return json.dumps(
            {"at_ms": self.at_ms, "kind": self.kind, "seq": self.seq,
             "a": self.a, "b": self.b, "detail": self.detail},
            sort_keys=True, separators=(",", ":"))


class Tracer:
    """Bounded ring buffer of trace records with a running digest."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._buffer: deque[TraceRecord] = deque(maxlen=capacity)
        self._digest = hashlib.sha256()
        self._total = 0

    # ------------------------------------------------------------------
    def record(self, at_ms: float, kind: str, seq: int = -1,
               a: int = -1, b: int = -1, detail: str = "") -> None:
        """Append one record and fold it into the running digest."""
        rec = TraceRecord(at_ms, kind, seq, a, b, detail)
        self._buffer.append(rec)
        self._digest.update(rec.canonical().encode("utf-8"))
        self._total += 1

    @property
    def total_records(self) -> int:
        """Records ever emitted (buffered + fallen off the ring)."""
        return self._total

    def __len__(self) -> int:
        """Records currently held in the ring buffer."""
        return len(self._buffer)

    def records(self) -> tuple[TraceRecord, ...]:
        """The buffered window, oldest first."""
        return tuple(self._buffer)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(tuple(self._buffer))

    # ------------------------------------------------------------------
    def trace_digest(self) -> str:
        """SHA-256 hex digest over every record emitted so far.

        Covers the full stream, not just the buffered window, so two
        identically-seeded runs can be asserted byte-identical even when
        the ring buffer overflowed.
        """
        return self._digest.copy().hexdigest()

    def to_jsonl(self) -> str:
        """The buffered window as JSON lines."""
        return "".join(rec.to_json() + "\n" for rec in self._buffer)

    def export_jsonl(self, path: str | Path) -> Path:
        """Write the buffered window to ``path`` as JSON lines."""
        target = Path(path)
        target.write_text(self.to_jsonl(), encoding="utf-8")
        return target

    def clear(self) -> None:
        """Drop the buffer and restart the digest and total count."""
        self._buffer.clear()
        self._digest = hashlib.sha256()
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Tracer({len(self._buffer)}/{self.capacity} buffered, "
                f"{self._total} total)")

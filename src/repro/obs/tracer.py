"""Deterministic structured trace capture for the event simulator.

A :class:`Tracer` hooks the hot spots of the runtime —
:meth:`repro.sim.engine.Simulator.schedule` / ``run`` and
:meth:`repro.sim.messaging.MessageNetwork.send` / ``_deliver`` — and
emits one :class:`TraceRecord` per action: virtual time, record kind,
the peer pair involved and the message kind.  Records land in a bounded
ring buffer (old records fall off; memory stays flat on long runs) while
a running SHA-256 over the *complete* record stream feeds
:meth:`Tracer.trace_digest`.

Because the simulator breaks timestamp ties by insertion sequence and
every random draw flows through seeded :class:`~repro.sim.random.
RandomSource` streams, two identically-seeded runs must produce
byte-identical traces — ``trace_digest()`` turns that into a one-line
regression assertion (see ``tests/test_obs.py``).

Causal tracing extends the flat record stream with *span
contexts*: a :class:`SpanContext` names one causal episode (trace) and
one node inside it (span), and every record can optionally carry the
``(trace_id, span_id, parent_id)`` triple.  Span identifiers come from
deterministic per-tracer counters — no randomness — so span trees are as
reproducible as the record stream itself.  Span capture is **off by
default** (``Tracer(spans=False)``); a span-less record canonicalizes to
the exact pre-span encoding, keeping historical ``trace_digest`` values
bit-identical unless span capture is explicitly enabled.

The tracer is clock-agnostic: record sites always timestamp records
explicitly, but a ``clock`` callable (virtual ``Simulator.now`` or
wall-clock ``AsyncioTransport.now``) can be attached so call sites
without a timestamp in hand may pass ``at_ms=None`` and let the tracer
sample it.  Sim-backed runs never exercise the sampling path, so the
seam is bit-transparent to pinned digests.  For live runs,
:meth:`Tracer.drain_records` turns the ring buffer into a stream: each
call hands back the records appended since the previous drain and
accounts (never silently) for any that fell off the ring in between.
"""

from __future__ import annotations

import hashlib
import json
import itertools
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional

from ..errors import TelemetryError

#: A time source: returns the current time in milliseconds.  Virtual
#: (``Simulator.now``) and wall-clock (``AsyncioTransport.now``) sources
#: share this shape, which is the whole point of the seam.
Clock = Callable[[], float]

#: Record kinds emitted by the built-in hooks.
KIND_SCHEDULE = "schedule"
KIND_FIRE = "fire"
KIND_SEND = "send"
KIND_LOST = "lost"
KIND_DELIVER = "deliver"
KIND_DEAD_LETTER = "dead_letter"

#: Record kind opening a causal episode (an SSA flood, one member's
#: subscription walk, a payload dissemination, a repair episode, ...).
KIND_SPAN = "span"

#: Record kinds emitted by the fault-injection layer (:mod:`repro.faults`).
KIND_FAULT_DROP = "fault_drop"
KIND_FAULT_DUPLICATE = "fault_duplicate"
KIND_FAULT_DELAY = "fault_delay"
KIND_FAULT_REORDER = "fault_reorder"
KIND_PARTITION_DROP = "partition_drop"
KIND_PARTITION_START = "partition_start"
KIND_PARTITION_HEAL = "partition_heal"
KIND_CRASH = "crash"
KIND_RESTART = "restart"

#: Record kind emitted by the topology observatory's watchdog engine
#: (:mod:`repro.obs.watchdog`) when a rule fires or clears.
KIND_WATCHDOG = "watchdog"


@dataclass(frozen=True)
class SpanContext:
    """One node of a causal episode tree.

    ``trace_id`` names the episode (all spans of one SSA flood share
    it); ``span_id`` names this node; ``parent_id`` is the span that
    caused it (-1 for episode roots).  Identifiers are handed out by
    deterministic per-tracer counters, so identically-seeded runs build
    identical trees.
    """

    trace_id: int
    span_id: int
    parent_id: int = -1


@dataclass(frozen=True)
class TraceRecord:
    """One traced action inside the simulated runtime.

    ``a``/``b`` are peer ids for transport records (sender/recipient)
    and unused (-1) for engine records; ``seq`` is the engine's event
    sequence number for ``schedule``/``fire`` records; ``detail`` holds
    the message kind value or the scheduled firing time.  The span
    triple is -1 everywhere unless the record was captured with span
    tracing enabled.
    """

    at_ms: float
    kind: str
    seq: int = -1
    a: int = -1
    b: int = -1
    detail: str = ""
    trace_id: int = -1
    span_id: int = -1
    parent_id: int = -1

    def canonical(self) -> str:
        """Stable one-line encoding, the unit hashed by the digest.

        Span-less records use the exact pre-span encoding, so enabling
        the rest of this PR without ``spans=True`` leaves historical
        digests bit-identical.
        """
        base = (f"{self.at_ms!r}|{self.kind}|{self.seq}"
                f"|{self.a}|{self.b}|{self.detail}")
        if self.span_id < 0:
            return base
        return (f"{base}|{self.trace_id}|{self.span_id}"
                f"|{self.parent_id}")

    @property
    def span(self) -> Optional[SpanContext]:
        """The record's span context, or None for span-less records."""
        if self.span_id < 0:
            return None
        return SpanContext(self.trace_id, self.span_id, self.parent_id)

    def to_json(self) -> str:
        """JSON object with deterministic key order.

        Span fields appear only on records captured with span tracing,
        keeping legacy exports byte-identical.
        """
        payload: dict[str, object] = {
            "at_ms": self.at_ms, "kind": self.kind, "seq": self.seq,
            "a": self.a, "b": self.b, "detail": self.detail}
        if self.span_id >= 0:
            payload["trace_id"] = self.trace_id
            payload["span_id"] = self.span_id
            payload["parent_id"] = self.parent_id
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class Tracer:
    """Bounded ring buffer of trace records with a running digest.

    ``spans=True`` turns on causal-span capture: :meth:`root_span` /
    :meth:`child_span` mint deterministic :class:`SpanContext` ids and
    :meth:`record` accepts a ``span`` to stamp onto the record.  With
    ``spans=False`` (the default) both helpers return None and records
    canonicalize exactly as before this feature existed.

    ``registry`` (optional) mirrors ring-buffer drops into an
    ``obs.trace.dropped`` counter so silent truncation is visible in
    snapshots and reports; :attr:`dropped_records` always tracks it
    locally regardless.

    ``clock`` (optional) lets record sites pass ``at_ms=None``: the
    tracer samples the attached time source instead.  Simulator-backed
    hooks always pass explicit timestamps, so attaching a clock cannot
    perturb a sim run's digest.
    """

    def __init__(self, capacity: int = 65536,
                 spans: bool = False,
                 registry=None,
                 clock: Optional[Clock] = None) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.spans = spans
        self.clock = clock
        self._buffer: deque[TraceRecord] = deque(maxlen=capacity)
        self._digest = hashlib.sha256()
        self._total = 0
        self._dropped = 0
        self._drained = 0
        self._stream_dropped = 0
        self._c_dropped = (registry.counter("obs.trace.dropped")
                           if registry is not None else None)
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Span minting
    # ------------------------------------------------------------------
    def root_span(self, at_ms: float | None = None,
                  kind: str = "") -> Optional[SpanContext]:
        """Open a new causal episode; returns its root span context.

        When ``at_ms`` is given, a ``span`` record marking the episode
        (with ``detail=kind``) is appended to the stream.  Returns None
        — and records nothing — when span capture is disabled, so call
        sites stay digest-transparent without their own guards.
        """
        if not self.spans:
            return None
        context = SpanContext(next(self._trace_ids), next(self._span_ids))
        if at_ms is not None:
            self.record(at_ms, KIND_SPAN, detail=kind, span=context)
        return context

    def child_span(self, parent: Optional[SpanContext]
                   ) -> Optional[SpanContext]:
        """A fresh span under ``parent`` (a fresh root when parent is
        None); None when span capture is disabled."""
        if not self.spans:
            return None
        if parent is None:
            return SpanContext(next(self._trace_ids),
                               next(self._span_ids))
        return SpanContext(parent.trace_id, next(self._span_ids),
                           parent.span_id)

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current time from the attached clock."""
        if self.clock is None:
            raise TelemetryError("tracer has no clock attached")
        return float(self.clock())

    def record(self, at_ms: Optional[float], kind: str, seq: int = -1,
               a: int = -1, b: int = -1, detail: str = "",
               span: Optional[SpanContext] = None) -> None:
        """Append one record and fold it into the running digest.

        ``at_ms=None`` samples the attached clock (wall or virtual) —
        the clock-agnostic path used by live call sites that have no
        timestamp in hand.
        """
        if at_ms is None:
            at_ms = self.now()
        if span is None:
            rec = TraceRecord(at_ms, kind, seq, a, b, detail)
        else:
            rec = TraceRecord(at_ms, kind, seq, a, b, detail,
                              span.trace_id, span.span_id,
                              span.parent_id)
        if len(self._buffer) == self.capacity:
            self._dropped += 1
            if self._c_dropped is not None:
                self._c_dropped.inc()
        self._buffer.append(rec)
        self._digest.update(rec.canonical().encode("utf-8"))
        self._total += 1

    @property
    def total_records(self) -> int:
        """Records ever emitted (buffered + fallen off the ring)."""
        return self._total

    @property
    def dropped_records(self) -> int:
        """Records that fell off the ring buffer (silently truncated
        from :meth:`records`/:meth:`to_jsonl`, still in the digest)."""
        return self._dropped

    def __len__(self) -> int:
        """Records currently held in the ring buffer."""
        return len(self._buffer)

    @property
    def stream_dropped(self) -> int:
        """Records lost to the ring between :meth:`drain_records` calls
        (the live pump fell behind; they are in the digest but never
        reached the streamed export)."""
        return self._stream_dropped

    def records(self) -> tuple[TraceRecord, ...]:
        """The buffered window, oldest first."""
        return tuple(self._buffer)

    def drain_records(self) -> tuple[tuple[TraceRecord, ...], int]:
        """Records appended since the last drain, plus the missed count.

        The streaming counterpart of :meth:`records`: a live pump calls
        this periodically and appends the fresh window to its JSONL
        sink.  When the pump falls behind and the ring overwrites
        records it never saw, the second element reports how many were
        missed — they are folded into :attr:`stream_dropped` (and were
        already counted by ``obs.trace.dropped`` when the ring evicted
        them), so a lossy stream is detectable instead of silent.
        """
        start = self._total - len(self._buffer)
        behind = start - self._drained
        if behind > 0:
            missed, skip = behind, 0
        else:
            missed, skip = 0, -behind
        window = tuple(self._buffer)
        fresh = window[skip:] if skip else window
        self._drained = self._total
        self._stream_dropped += missed
        return fresh, missed

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(tuple(self._buffer))

    # ------------------------------------------------------------------
    def trace_digest(self) -> str:
        """SHA-256 hex digest over every record emitted so far.

        Covers the full stream, not just the buffered window, so two
        identically-seeded runs can be asserted byte-identical even when
        the ring buffer overflowed.
        """
        return self._digest.copy().hexdigest()

    def export_meta(self) -> dict[str, object]:
        """Stream accounting for exports and reports.

        Carries the drop count so consumers of the buffered window know
        whether (and how much) the ring truncated the full stream.
        """
        return {
            "total_records": self._total,
            "buffered_records": len(self._buffer),
            "dropped_records": self._dropped,
            "stream_dropped": self._stream_dropped,
            "capacity": self.capacity,
            "spans": self.spans,
            "trace_digest": self.trace_digest(),
        }

    def iter_jsonl(self, include_meta: bool = False
                   ) -> Iterator[str]:
        """Yield the buffered window as JSON lines, one at a time.

        Each yielded string is one complete line including its trailing
        newline; ``include_meta=True`` yields the ``{"meta": ...}``
        accounting line first.  The buffer is copied up front so records
        appended mid-iteration don't shift the window.
        """
        if include_meta:
            yield json.dumps({"meta": self.export_meta()},
                             sort_keys=True,
                             separators=(",", ":")) + "\n"
        for rec in tuple(self._buffer):
            yield rec.to_json() + "\n"

    def to_jsonl(self, include_meta: bool = False) -> str:
        """The buffered window as JSON lines.

        ``include_meta=True`` prepends one ``{"meta": ...}`` line with
        the stream accounting (total/buffered/dropped/digest), so a
        truncated export is detectable from the file alone.
        """
        return "".join(self.iter_jsonl(include_meta=include_meta))

    def export_jsonl(self, path: str | Path,
                     include_meta: bool = False) -> Path:
        """Stream the buffered window to ``path`` as JSON lines.

        Writes line by line from :meth:`iter_jsonl` so long runs never
        materialize the whole export twice; output stays byte-identical
        to ``to_jsonl()`` (pinned by a test).
        """
        target = Path(path)
        with target.open("w", encoding="utf-8", newline="") as handle:
            for line in self.iter_jsonl(include_meta=include_meta):
                handle.write(line)
        return target

    def clear(self) -> None:
        """Drop the buffer and restart the digest, counts and span ids."""
        self._buffer.clear()
        self._digest = hashlib.sha256()
        self._total = 0
        self._dropped = 0
        self._drained = 0
        self._stream_dropped = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Tracer({len(self._buffer)}/{self.capacity} buffered, "
                f"{self._total} total, {self._dropped} dropped)")


#: Process-wide fallback tracer for the procedural protocol paths.
#: None (no capture at all) unless :func:`enable_tracing` installs one.
_default_tracer: Optional[Tracer] = None


def get_default_tracer() -> Optional[Tracer]:
    """The process-wide fallback tracer (None unless installed)."""
    return _default_tracer


def set_default_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the fallback; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def enable_tracing(capacity: int = 262144, spans: bool = True,
                   registry=None) -> Tracer:
    """Install and return a fresh span-capturing fallback tracer.

    The procedural protocol paths (advertisement propagation, member
    subscription, ripple search, tree repair) emit span records into the
    default tracer when one is installed — this is how
    ``groupcast-experiments --report`` captures causal trees from the
    fast procedural sweeps that never touch a :class:`MessageNetwork`.
    """
    tracer = Tracer(capacity=capacity, spans=spans, registry=registry)
    set_default_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Remove the fallback tracer (procedural paths stop recording)."""
    set_default_tracer(None)

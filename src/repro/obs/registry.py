"""Named counters, gauges and fixed-bucket histograms.

The paper's entire evaluation is counted quantities — messages per
service lookup (Fig. 11), link and node stress (Figs. 15-16), overload
index (Fig. 17) — so every protocol layer records what it does through a
:class:`Registry` of named instruments instead of scattering bare-int
attributes.  Instruments are deliberately tiny (``__slots__``, one float
or int of state) so they can stay enabled inside benchmarks; a disabled
registry hands out shared no-op instruments, making telemetry free where
it is not wanted.

Instrument names are dotted paths (``messages.advertisement``,
``net.sent``, ``lookup.latency_ms``); the mapping from paper figures to
instrument names is documented in the README's Observability section.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Optional, Sequence, Union

from ..errors import TelemetryError

#: Default histogram buckets, tuned for millisecond latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self._value += amount

    def reset(self) -> None:
        """Zero the count."""
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A value that can move both ways (queue depth, alive peers)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the level."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the level by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the level by ``amount``."""
        self._value -= amount

    def reset(self) -> None:
        """Zero the level."""
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Fixed-bucket distribution of observed samples.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge, so
    ``bucket_counts()`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise TelemetryError(
                f"histogram {name!r} needs at least one bucket")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise TelemetryError(
                f"histogram {name!r} bucket edges must increase strictly")
        self.name = name
        self.bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Average sample (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket sample counts, overflow bucket last."""
        return tuple(self._counts)

    def merge(self, bucket_counts: Sequence[int], total_sum: float,
              total_count: int) -> None:
        """Fold another histogram's state into this one (additive)."""
        if len(bucket_counts) != len(self._counts):
            raise TelemetryError(
                f"histogram {self.name!r} cannot merge "
                f"{len(bucket_counts)} buckets into {len(self._counts)}")
        for i, count in enumerate(bucket_counts):
            self._counts[i] += count
        self._sum += total_sum
        self._count += total_count

    def reset(self) -> None:
        """Forget all samples."""
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self._count}, "
                f"mean={self.mean:.3f})")


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    """Shared do-nothing gauge handed out by disabled registries."""

    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by disabled registries."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")

Instrument = Union[Counter, Gauge, Histogram]


class Registry:
    """A namespace of instruments, memoized by name.

    Asking twice for the same name returns the same instrument; asking
    for an existing name with a different instrument type raises
    :class:`~repro.errors.TelemetryError`.  A registry constructed with
    ``enabled=False`` hands out shared no-op instruments, so telemetry
    call sites cost one attribute lookup and an empty call.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self._lookup(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_GAUGE
        return self._lookup(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, bounds)
            self._instruments[name] = instrument
        elif type(instrument) is not Histogram:
            raise TelemetryError(
                f"{name!r} is a {type(instrument).__name__}, not a Histogram")
        return instrument

    def _lookup(self, name: str, cls: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TelemetryError(
                f"{name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}")
        return instrument

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Instrument]:
        """The instrument called ``name``, or None if never created."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Sorted names of every instrument created so far."""
        return sorted(self._instruments)

    def counters(self, prefix: str = "") -> dict[str, int]:
        """``{name: value}`` of every counter under ``prefix``."""
        return {
            name: inst.value
            for name, inst in self._instruments.items()
            if isinstance(inst, Counter) and name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view of every instrument, keyed by name.

        Counters and gauges map to their value; histograms map to a dict
        of ``count``/``sum``/``mean``/``buckets``.
        """
        out: dict[str, object] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                out[name] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "mean": inst.mean,
                    "buckets": inst.bucket_counts(),
                }
            else:
                out[name] = inst.value
        return out

    def dump_state(self) -> dict[str, tuple]:
        """Typed, lossless export of every instrument for merging.

        Unlike :meth:`snapshot` (a human-facing view), the dump carries
        enough structure (instrument type, histogram bucket bounds) to
        reconstruct instruments in another registry — the transport used
        by the process-parallel experiment runner to fold worker
        telemetry back into the parent.
        """
        out: dict[str, tuple] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                out[name] = ("histogram", inst.bounds,
                             inst.bucket_counts(), inst.sum, inst.count)
            elif isinstance(inst, Gauge):
                out[name] = ("gauge", inst.value)
            else:
                out[name] = ("counter", inst.value)
        return out

    def merge_state(self, state: dict[str, tuple]) -> None:
        """Fold a :meth:`dump_state` export into this registry.

        Counters and histograms merge additively; gauges (levels) merge
        additively too, which is correct for the per-worker deltas the
        parallel runner produces.  Merging in sorted-name order keeps
        instrument creation order — and therefore snapshots —
        deterministic regardless of worker count.
        """
        if not self.enabled:
            return
        for name in sorted(state):
            entry = state[name]
            kind = entry[0]
            if kind == "histogram":
                _, bounds, buckets, total_sum, total_count = entry
                self.histogram(name, bounds).merge(
                    buckets, total_sum, total_count)
            elif kind == "gauge":
                self.gauge(name).inc(entry[1])
            else:
                self.counter(name).inc(entry[1])

    def reset(self) -> None:
        """Zero every instrument (names and types are kept)."""
        for inst in self._instruments.values():
            inst.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Registry({state}, {len(self._instruments)} instruments)"


#: Shared disabled registry: the default for the procedural fast paths,
#: where telemetry must cost nothing unless explicitly requested.
NULL_REGISTRY = Registry(enabled=False)

_default_registry: Registry = NULL_REGISTRY


def get_default_registry() -> Registry:
    """The process-wide fallback registry (disabled unless installed)."""
    return _default_registry


def set_default_registry(registry: Registry) -> Registry:
    """Install ``registry`` as the fallback; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable_telemetry() -> Registry:
    """Install and return a fresh enabled fallback registry."""
    registry = Registry(enabled=True)
    set_default_registry(registry)
    return registry


def disable_telemetry() -> None:
    """Restore the disabled fallback registry."""
    set_default_registry(NULL_REGISTRY)

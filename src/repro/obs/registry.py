"""Named counters, gauges and fixed-bucket histograms.

The paper's entire evaluation is counted quantities — messages per
service lookup (Fig. 11), link and node stress (Figs. 15-16), overload
index (Fig. 17) — so every protocol layer records what it does through a
:class:`Registry` of named instruments instead of scattering bare-int
attributes.  Instruments are deliberately tiny (``__slots__``, one float
or int of state) so they can stay enabled inside benchmarks; a disabled
registry hands out shared no-op instruments, making telemetry free where
it is not wanted.

Instrument names are dotted paths (``messages.advertisement``,
``net.sent``, ``lookup.latency_ms``); the mapping from paper figures to
instrument names is documented in the README's Observability section.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Optional, Sequence, Union

from ..errors import TelemetryError
from .dims import DEFAULT_SKETCH_LAYOUT, QuantileSketch, SketchLayout

#: Default histogram buckets, tuned for millisecond latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self._value += amount

    def reset(self) -> None:
        """Zero the count."""
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """A value that can move both ways (queue depth, alive peers)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current level."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the level."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the level by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the level by ``amount``."""
        self._value -= amount

    def reset(self) -> None:
        """Zero the level."""
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Fixed-bucket distribution of observed samples.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge, so
    ``bucket_counts()`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise TelemetryError(
                f"histogram {name!r} needs at least one bucket")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise TelemetryError(
                f"histogram {name!r} bucket edges must increase strictly")
        self.name = name
        self.bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Average sample (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket sample counts, overflow bucket last."""
        return tuple(self._counts)

    def merge(self, bucket_counts: Sequence[int], total_sum: float,
              total_count: int) -> None:
        """Fold another histogram's state into this one (additive)."""
        if len(bucket_counts) != len(self._counts):
            raise TelemetryError(
                f"histogram {self.name!r} cannot merge "
                f"{len(bucket_counts)} buckets into {len(self._counts)}")
        for i, count in enumerate(bucket_counts):
            self._counts[i] += count
        self._sum += total_sum
        self._count += total_count

    def reset(self) -> None:
        """Forget all samples."""
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self._count}, "
                f"mean={self.mean:.3f})")


#: Reserved label rendering for the shared catch-all series a bounded
#: family routes observations to once ``max_series`` is reached.
OVERFLOW_SERIES = "__overflow__"

#: Family child kinds, in the order the dump encoding documents them.
FAMILY_KINDS = ("counter", "gauge", "histogram", "sketch")


def _series_name(name: str, label_names: Sequence[str],
                 label_values: Sequence[str]) -> str:
    pairs = ",".join(
        f"{k}={v}" for k, v in zip(label_names, label_values))
    return f"{name}{{{pairs}}}"


class MetricFamily:
    """A labeled family of instruments with bounded cardinality.

    ``labels(*values)`` returns the child instrument for that label
    tuple, creating it on first use — until ``max_series`` distinct
    tuples exist.  Beyond the bound, every further label tuple routes to
    one shared overflow child (series ``name{__overflow__}``) and bumps
    :attr:`overflow_routed`, so no observation is ever dropped: the sum
    over all children (overflow included) conserves the total, and the
    overflow accounting is explicit rather than silent.
    """

    __slots__ = ("name", "kind", "label_names", "max_series", "_factory",
                 "_series", "_overflow", "overflow_routed")

    def __init__(self, name: str, label_names: Sequence[str], kind: str,
                 factory: Callable[[str], "Instrument"],
                 max_series: int) -> None:
        names = tuple(str(n) for n in label_names)
        if not names:
            raise TelemetryError(
                f"family {name!r} needs at least one label name")
        if kind not in FAMILY_KINDS:
            raise TelemetryError(
                f"family {name!r} kind {kind!r} not in {FAMILY_KINDS}")
        if max_series < 1:
            raise TelemetryError(
                f"family {name!r} needs max_series >= 1, got {max_series}")
        self.name = name
        self.kind = kind
        self.label_names = names
        self.max_series = int(max_series)
        self._factory = factory
        self._series: dict[tuple[str, ...], Instrument] = {}
        self._overflow: Optional[Instrument] = None
        self.overflow_routed = 0

    # ------------------------------------------------------------------
    def labels(self, *values: object) -> "Instrument":
        """The child instrument for this label tuple (bounded)."""
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise TelemetryError(
                f"family {self.name!r} takes labels {self.label_names}, "
                f"got {len(key)} values")
        child = self._series.get(key)
        if child is not None:
            return child
        if len(self._series) < self.max_series:
            child = self._factory(
                _series_name(self.name, self.label_names, key))
            self._series[key] = child
            return child
        self.overflow_routed += 1
        return self._ensure_overflow()

    def _ensure_overflow(self) -> "Instrument":
        if self._overflow is None:
            self._overflow = self._factory(
                f"{self.name}{{{OVERFLOW_SERIES}}}")
        return self._overflow

    # ------------------------------------------------------------------
    @property
    def series_count(self) -> int:
        """Distinct dedicated (non-overflow) series created so far."""
        return len(self._series)

    @property
    def overflow(self) -> Optional["Instrument"]:
        """The shared catch-all child, or None if never needed."""
        return self._overflow

    def series(self) -> list[tuple[tuple[str, ...], "Instrument"]]:
        """``(label_values, child)`` pairs in sorted label order."""
        return [(key, self._series[key]) for key in sorted(self._series)]

    def reset(self) -> None:
        """Zero every child (series set and types are kept)."""
        for child in self._series.values():
            child.reset()
        if self._overflow is not None:
            self._overflow.reset()
        self.overflow_routed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricFamily({self.name!r}, kind={self.kind!r}, "
                f"series={len(self._series)}/{self.max_series})")


class _NullFamily(MetricFamily):
    """Shared do-nothing family handed out by disabled registries."""

    __slots__ = ("_null",)

    def __init__(self, kind: str, null: "Instrument") -> None:
        super().__init__("null", ("label",), kind, lambda name: null, 1)
        self._null = null

    def labels(self, *values: object) -> "Instrument":  # noqa: D102
        return self._null


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class _NullGauge(Gauge):
    """Shared do-nothing gauge handed out by disabled registries."""

    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by disabled registries."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


class _NullSketch(QuantileSketch):
    """Shared do-nothing sketch handed out by disabled registries."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def observe_many(self, values) -> None:  # noqa: D102 - no-op
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")
_NULL_SKETCH = _NullSketch("null")

Instrument = Union[Counter, Gauge, Histogram, QuantileSketch]

_NULL_FAMILIES = {
    "counter": _NullFamily("counter", _NULL_COUNTER),
    "gauge": _NullFamily("gauge", _NULL_GAUGE),
    "histogram": _NullFamily("histogram", _NULL_HISTOGRAM),
    "sketch": _NullFamily("sketch", _NULL_SKETCH),
}


class Registry:
    """A namespace of instruments, memoized by name.

    Asking twice for the same name returns the same instrument; asking
    for an existing name with a different instrument type raises
    :class:`~repro.errors.TelemetryError`.  A registry constructed with
    ``enabled=False`` hands out shared no-op instruments, so telemetry
    call sites cost one attribute lookup and an empty call.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self._lookup(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_GAUGE
        return self._lookup(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, bounds)
            self._instruments[name] = instrument
        elif type(instrument) is not Histogram:
            raise TelemetryError(
                f"{name!r} is a {type(instrument).__name__}, not a Histogram")
        return instrument

    def sketch(self, name: str,
               layout: SketchLayout = DEFAULT_SKETCH_LAYOUT,
               ) -> QuantileSketch:
        """The quantile sketch called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_SKETCH
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = QuantileSketch(name, layout)
            self._instruments[name] = instrument
        elif type(instrument) is not QuantileSketch:
            raise TelemetryError(
                f"{name!r} is a {type(instrument).__name__}, "
                f"not a QuantileSketch")
        elif instrument.layout != layout:
            raise TelemetryError(
                f"sketch {name!r} exists with layout {instrument.layout}, "
                f"asked for {layout}")
        return instrument

    def family(self, name: str, label_names: Sequence[str],
               kind: str = "counter", *,
               bounds: Sequence[float] = DEFAULT_BUCKETS,
               layout: SketchLayout = DEFAULT_SKETCH_LAYOUT,
               max_series: int = 64) -> MetricFamily:
        """The labeled family called ``name`` (created on first use).

        ``kind`` selects the child instrument type (one of
        :data:`FAMILY_KINDS`); ``max_series`` bounds the cardinality —
        label tuples beyond the bound share one overflow child with
        explicit accounting (see :class:`MetricFamily`).
        """
        if not self.enabled:
            return _NULL_FAMILIES[kind]
        family = self._families.get(name)
        if family is None:
            if name in self._instruments:
                raise TelemetryError(
                    f"{name!r} is already a plain instrument, "
                    f"not a family")
            if kind == "histogram":
                edges = tuple(float(b) for b in bounds)
                factory = lambda n: Histogram(n, edges)  # noqa: E731
            elif kind == "sketch":
                factory = lambda n: QuantileSketch(n, layout)  # noqa: E731
            elif kind == "gauge":
                factory = Gauge
            else:
                factory = Counter
            family = MetricFamily(name, label_names, kind, factory,
                                  max_series)
            self._families[name] = family
        else:
            if family.kind != kind:
                raise TelemetryError(
                    f"family {name!r} is kind {family.kind!r}, "
                    f"not {kind!r}")
            if family.label_names != tuple(str(n) for n in label_names):
                raise TelemetryError(
                    f"family {name!r} has labels {family.label_names}, "
                    f"asked for {tuple(label_names)}")
        return family

    def _lookup(self, name: str, cls: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            if name in self._families:
                raise TelemetryError(
                    f"{name!r} is already a family, not a {cls.__name__}")
            instrument = cls(name)
            self._instruments[name] = instrument
        elif type(instrument) is not cls:
            raise TelemetryError(
                f"{name!r} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}")
        return instrument

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Union[Instrument, MetricFamily]]:
        """The instrument or family called ``name``, or None."""
        inst = self._instruments.get(name)
        if inst is not None:
            return inst
        return self._families.get(name)

    def names(self) -> list[str]:
        """Sorted names of every instrument and family created so far."""
        return sorted((*self._instruments, *self._families))

    def counters(self, prefix: str = "") -> dict[str, int]:
        """``{name: value}`` of every counter under ``prefix``."""
        return {
            name: inst.value
            for name, inst in self._instruments.items()
            if isinstance(inst, Counter) and name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, object]:
        """Plain-dict view of every instrument, keyed by name.

        Counters and gauges map to their value; histograms map to a dict
        of ``count``/``sum``/``mean``/``buckets``.
        """
        out: dict[str, object] = {}
        for name, inst in self._instruments.items():
            out[name] = _snapshot_value(inst)
        for name, family in self._families.items():
            for key, child in family.series():
                out[_series_name(name, family.label_names, key)] = \
                    _snapshot_value(child)
            if family.overflow is not None:
                out[f"{name}{{{OVERFLOW_SERIES}}}"] = \
                    _snapshot_value(family.overflow)
            if family.overflow_routed:
                out[f"{name}.__overflow_routed"] = family.overflow_routed
        return dict(sorted(out.items()))

    def dump_state(self) -> dict[str, tuple]:
        """Typed, lossless export of every instrument for merging.

        Unlike :meth:`snapshot` (a human-facing view), the dump carries
        enough structure (instrument type, histogram bucket bounds,
        sketch layout, family shape) to reconstruct instruments in
        another registry — the transport used by the process-parallel
        experiment runner to fold worker telemetry back into the parent.

        A family dumps as one entry under the family name::

            ("family", kind, label_names, max_series, extra,
             ((label_values, child_entry), ...),   # sorted label order
             overflow_entry_or_None, overflow_routed)

        where ``extra`` pins the child constructor parameters (histogram
        bounds, sketch ``(lo, hi, bins)``, else None) and each child
        entry reuses the plain-instrument encoding.  This layout is the
        pinned wire format regression-tested in ``tests/test_dims.py``.
        """
        out: dict[str, tuple] = {}
        for name, inst in self._instruments.items():
            out[name] = _dump_value(inst)
        for name, family in self._families.items():
            if family.kind == "histogram":
                probe = family._factory("__probe__")
                extra: object = probe.bounds
            elif family.kind == "sketch":
                probe = family._factory("__probe__")
                extra = (probe.layout.lo, probe.layout.hi,
                         probe.layout.bins)
            else:
                extra = None
            series = tuple(
                (key, _dump_value(child)) for key, child in family.series())
            overflow = (_dump_value(family.overflow)
                        if family.overflow is not None else None)
            out[name] = ("family", family.kind, family.label_names,
                         family.max_series, extra, series, overflow,
                         family.overflow_routed)
        return dict(sorted(out.items()))

    def merge_state(self, state: dict[str, tuple]) -> None:
        """Fold a :meth:`dump_state` export into this registry.

        Counters, histograms and sketches merge additively; gauges
        (levels) merge additively too, which is correct for the
        per-worker deltas the parallel runner produces.  Family entries
        merge child-by-child in sorted label order: disjoint label sets
        union (missing series are created), overlapping label sets add.
        Children that land beyond this registry's ``max_series`` bound
        route to the overflow child with the routing counted, so the
        merged totals still conserve every worker's observations.
        Merging in sorted-name order keeps instrument creation order —
        and therefore snapshots — deterministic regardless of worker
        count.
        """
        if not self.enabled:
            return
        for name in sorted(state):
            entry = state[name]
            kind = entry[0]
            if kind == "histogram":
                _, bounds, buckets, total_sum, total_count = entry
                self.histogram(name, bounds).merge(
                    buckets, total_sum, total_count)
            elif kind == "sketch":
                _, lo, hi, bins, counts = entry
                self.sketch(name, SketchLayout(lo, hi, bins)).merge(counts)
            elif kind == "family":
                (_, fkind, label_names, max_series, extra,
                 series, overflow, routed) = entry
                kwargs: dict[str, object] = {"max_series": max_series}
                if fkind == "histogram" and extra is not None:
                    kwargs["bounds"] = extra
                elif fkind == "sketch" and extra is not None:
                    kwargs["layout"] = SketchLayout(*extra)
                family = self.family(name, label_names, fkind, **kwargs)
                for key, child_entry in series:
                    _apply_state(family.labels(*key), child_entry)
                if overflow is not None:
                    _apply_state(family._ensure_overflow(), overflow)
                family.overflow_routed += routed
            elif kind == "gauge":
                self.gauge(name).inc(entry[1])
            else:
                self.counter(name).inc(entry[1])

    def reset(self) -> None:
        """Zero every instrument (names and types are kept)."""
        for inst in self._instruments.values():
            inst.reset()
        for family in self._families.values():
            family.reset()

    def __contains__(self, name: str) -> bool:
        return name in self._instruments or name in self._families

    def __len__(self) -> int:
        return len(self._instruments) + len(self._families)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        count = len(self._instruments) + len(self._families)
        return f"Registry({state}, {count} instruments)"


def _snapshot_value(inst: Instrument) -> object:
    """Human-facing snapshot view of one instrument."""
    if isinstance(inst, Histogram):
        return {
            "count": inst.count,
            "sum": inst.sum,
            "mean": inst.mean,
            "buckets": inst.bucket_counts(),
        }
    if isinstance(inst, QuantileSketch):
        return {
            "count": inst.count,
            "p50": inst.quantile(0.50),
            "p99": inst.quantile(0.99),
        }
    return inst.value


def _dump_value(inst: Instrument) -> tuple:
    """Typed transport tuple for one instrument."""
    if isinstance(inst, Histogram):
        return ("histogram", inst.bounds, inst.bucket_counts(),
                inst.sum, inst.count)
    if isinstance(inst, QuantileSketch):
        return ("sketch", inst.layout.lo, inst.layout.hi,
                inst.layout.bins, tuple(int(c) for c in inst.cell_counts()))
    if isinstance(inst, Gauge):
        return ("gauge", inst.value)
    return ("counter", inst.value)


def _apply_state(inst: Instrument, entry: tuple) -> None:
    """Fold one :func:`_dump_value` entry into a live instrument."""
    kind = entry[0]
    if kind == "histogram":
        inst.merge(entry[2], entry[3], entry[4])
    elif kind == "sketch":
        inst.merge(entry[4])
    else:
        inst.inc(entry[1])


#: Shared disabled registry: the default for the procedural fast paths,
#: where telemetry must cost nothing unless explicitly requested.
NULL_REGISTRY = Registry(enabled=False)

_default_registry: Registry = NULL_REGISTRY


def get_default_registry() -> Registry:
    """The process-wide fallback registry (disabled unless installed)."""
    return _default_registry


def set_default_registry(registry: Registry) -> Registry:
    """Install ``registry`` as the fallback; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable_telemetry() -> Registry:
    """Install and return a fresh enabled fallback registry."""
    registry = Registry(enabled=True)
    set_default_registry(registry)
    return registry


def disable_telemetry() -> None:
    """Restore the disabled fallback registry."""
    set_default_registry(NULL_REGISTRY)

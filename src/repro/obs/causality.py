"""Span-tree reconstruction and causal analysis of trace streams.

GroupCast's interesting behavior is causal: one SSA announcement at the
rendezvous begets a wave of forwarded copies, one subscription walks the
reverse path hop by hop, a TTL-2 ripple search fans out and snaps back.
The tracer (PR 1) records these as a flat stream; this module folds the
stream back into *span trees* — Dapper-style, one tree per causal
episode — and extracts the quantities that explain a run:

* **critical path** — the chain of spans whose virtual-time finish is
  the episode's finish; its latency is the episode's latency;
* **fan-out / depth** — how wide and how deep each wave ran;
* **cost attribution** — messages and virtual-time cost per message
  kind and per episode kind (``advertisement``, ``subscription``,
  ``dissemination``, ``repair``, ``heartbeat``).

Input is anything that yields :class:`~repro.obs.tracer.TraceRecord`
rows carrying span ids — a live :class:`~repro.obs.tracer.Tracer`, its
buffered window, or a JSONL export (meta line tolerated).  Records
without span ids are ignored, so a mixed stream (engine scheduling noise
plus spanned protocol records) parses cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..errors import TelemetryError
from .tracer import (
    KIND_DEAD_LETTER,
    KIND_DELIVER,
    KIND_LOST,
    KIND_SEND,
    KIND_SPAN,
    TraceRecord,
    Tracer,
)

#: Record kinds that close a message span, mapped to the span status.
_CLOSERS = {
    KIND_DELIVER: "delivered",
    KIND_DEAD_LETTER: "dead_letter",
    KIND_LOST: "lost",
    "fault_drop": "dropped",
    "partition_drop": "dropped",
}


@dataclass
class Span:
    """One reconstructed node of a causal episode tree."""

    trace_id: int
    span_id: int
    parent_id: int
    kind: str               # episode kind or message kind value
    start_ms: float
    end_ms: Optional[float] = None
    a: int = -1             # sender (-1 for episode roots)
    b: int = -1             # recipient (-1 for episode roots)
    status: str = "open"    # open|delivered|dropped|lost|dead_letter|root
    children: list["Span"] = field(default_factory=list)

    @property
    def latency_ms(self) -> float:
        """Span duration in virtual time (0.0 while still open)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def is_root(self) -> bool:
        return self.parent_id < 0

    def finish_ms(self) -> float:
        """The span's effective finish time (start for open spans)."""
        return self.end_ms if self.end_ms is not None else self.start_ms

    def to_dict(self) -> dict:
        """Plain-dict view (recursive), for JSON reports."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "a": self.a,
            "b": self.b,
            "status": self.status,
            "children": [child.to_dict() for child in self.children],
        }


@dataclass(frozen=True)
class TreeStats:
    """Shape and cost summary of one span tree."""

    trace_id: int
    kind: str
    span_count: int
    message_count: int
    depth: int
    max_fan_out: int
    mean_fan_out: float
    start_ms: float
    finish_ms: float
    critical_path_ms: float
    critical_path_hops: int


class SpanTree:
    """One causal episode: a root span and its descendants."""

    def __init__(self, root: Span,
                 spans: Mapping[int, Span]) -> None:
        self.root = root
        self._spans = dict(spans)

    @property
    def trace_id(self) -> int:
        return self.root.trace_id

    @property
    def kind(self) -> str:
        """Episode kind (the root's detail; e.g. ``advertisement``)."""
        return self.root.kind

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans.values())

    def span(self, span_id: int) -> Span:
        """Span by id."""
        return self._spans[span_id]

    def spans(self) -> list[Span]:
        """All spans of the episode, in span-id order."""
        return [self._spans[i] for i in sorted(self._spans)]

    def message_spans(self) -> list[Span]:
        """Spans that carry a message (everything but synthetic roots)."""
        return [s for s in self.spans() if s.status != "root"]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the episode is a rooted tree: acyclic, single root,
        every non-root parent resolvable, child start >= parent start.

        Raises :class:`~repro.errors.TelemetryError` on violation.
        """
        roots = [s for s in self._spans.values() if s.is_root]
        if len(roots) != 1:
            raise TelemetryError(
                f"trace {self.trace_id} has {len(roots)} roots")
        seen: set[int] = set()
        stack = [self.root.span_id]
        while stack:
            span_id = stack.pop()
            if span_id in seen:
                raise TelemetryError(
                    f"trace {self.trace_id} revisits span {span_id}")
            seen.add(span_id)
            span = self._spans[span_id]
            for child in span.children:
                if child.parent_id != span.span_id:
                    raise TelemetryError(
                        f"span {child.span_id} disagrees about parent "
                        f"{span.span_id}")
                if child.start_ms + 1e-9 < span.start_ms:
                    raise TelemetryError(
                        f"span {child.span_id} starts before its "
                        f"parent {span.span_id}")
                stack.append(child.span_id)
        if seen != set(self._spans):
            orphans = sorted(set(self._spans) - seen)
            raise TelemetryError(
                f"trace {self.trace_id} has unreachable spans {orphans}")

    # ------------------------------------------------------------------
    def critical_path(self) -> list[Span]:
        """Root-to-leaf chain ending at the episode's last finish.

        This is the virtual-time critical path: the sequence of causally
        chained messages that determined when the episode completed.
        """
        finish: dict[int, float] = {}

        def fill(span: Span) -> float:
            best = span.finish_ms()
            for child in span.children:
                best = max(best, fill(child))
            finish[span.span_id] = best
            return best

        fill(self.root)
        path = [self.root]
        current = self.root
        while current.children:
            current = max(current.children,
                          key=lambda c: (finish[c.span_id], -c.span_id))
            path.append(current)
        return path

    def critical_path_latency_ms(self) -> float:
        """Virtual time from episode start to its last causal finish."""
        path = self.critical_path()
        return path[-1].finish_ms() - self.root.start_ms

    # ------------------------------------------------------------------
    def shape(self) -> tuple:
        """Canonical timing-free structural signature of the episode.

        Each node reduces to ``(kind, a, b, status, sorted child
        shapes)``: everything a live run must reproduce from its sim
        twin — who caused which message to whom and how each span
        closed — with all timestamps and span-id numbering erased, and
        sibling order canonicalized (wall-clock runs interleave
        siblings freely).  Two episodes with equal shapes are the same
        causal tree.
        """
        def walk(span: Span) -> tuple:
            return (span.kind, span.a, span.b, span.status,
                    tuple(sorted(walk(child)
                                 for child in span.children)))

        return walk(self.root)

    def depth(self) -> int:
        """Longest root-to-leaf edge count."""
        def walk(span: Span) -> int:
            if not span.children:
                return 0
            return 1 + max(walk(child) for child in span.children)

        return walk(self.root)

    def fan_out(self) -> tuple[int, float]:
        """``(max, mean)`` children per non-leaf span."""
        counts = [len(s.children) for s in self._spans.values()
                  if s.children]
        if not counts:
            return 0, 0.0
        return max(counts), sum(counts) / len(counts)

    def cost_by_kind(self) -> dict[str, dict[str, float]]:
        """Per-message-kind cost: count and total/mean virtual latency."""
        out: dict[str, dict[str, float]] = {}
        for span in self.message_spans():
            kind = span.kind or "(unlabelled)"
            entry = out.setdefault(
                kind, {"messages": 0, "delivered": 0,
                       "total_latency_ms": 0.0})
            entry["messages"] += 1
            if span.status == "delivered":
                entry["delivered"] += 1
                entry["total_latency_ms"] += span.latency_ms
        for entry in out.values():
            delivered = entry["delivered"]
            entry["mean_latency_ms"] = (
                entry["total_latency_ms"] / delivered if delivered else 0.0)
        return out

    def stats(self) -> TreeStats:
        """Shape/cost summary of the episode."""
        max_fan, mean_fan = self.fan_out()
        path = self.critical_path()
        messages = self.message_spans()
        return TreeStats(
            trace_id=self.trace_id,
            kind=self.kind,
            span_count=len(self._spans),
            message_count=len(messages),
            depth=self.depth(),
            max_fan_out=max_fan,
            mean_fan_out=mean_fan,
            start_ms=self.root.start_ms,
            finish_ms=path[-1].finish_ms(),
            critical_path_ms=self.critical_path_latency_ms(),
            critical_path_hops=len(path) - 1,
        )


class SpanForest:
    """Every causal episode reconstructed from one trace stream."""

    def __init__(self, trees: list[SpanTree]) -> None:
        self._trees = trees
        self._by_id = {tree.trace_id: tree for tree in trees}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "SpanForest":
        """Reconstruct episodes from trace records (span-less ignored)."""
        spans: dict[int, dict[int, Span]] = {}
        for rec in records:
            if rec.span_id < 0:
                continue
            trace = spans.setdefault(rec.trace_id, {})
            if rec.kind == KIND_SPAN:
                trace[rec.span_id] = Span(
                    rec.trace_id, rec.span_id, rec.parent_id,
                    kind=rec.detail, start_ms=rec.at_ms, status="root")
            elif rec.kind == KIND_SEND:
                trace[rec.span_id] = Span(
                    rec.trace_id, rec.span_id, rec.parent_id,
                    kind=rec.detail, start_ms=rec.at_ms,
                    a=rec.a, b=rec.b, status="open")
            else:
                status = _CLOSERS.get(rec.kind)
                span = trace.get(rec.span_id)
                if span is None:
                    # Closing record whose opener fell off the ring (or
                    # an auxiliary record): synthesize a stub so the
                    # tree stays connected where possible.
                    if status is None:
                        continue
                    trace[rec.span_id] = Span(
                        rec.trace_id, rec.span_id, rec.parent_id,
                        kind=rec.detail, start_ms=rec.at_ms,
                        end_ms=rec.at_ms, a=rec.a, b=rec.b,
                        status=status)
                elif status is not None:
                    span.end_ms = rec.at_ms
                    span.status = status
        trees: list[SpanTree] = []
        for trace_id in sorted(spans):
            trace = spans[trace_id]
            roots = []
            for span in trace.values():
                parent = trace.get(span.parent_id)
                if parent is not None and span.parent_id >= 0:
                    parent.children.append(span)
                else:
                    roots.append(span)
            # A ring overflow can orphan subtrees; promote each orphan
            # to a root of its own partial tree rather than dropping it.
            for root in sorted(roots, key=lambda s: s.span_id):
                reachable = _collect(root)
                trees.append(SpanTree(
                    root, {s.span_id: s for s in reachable}))
        return cls(trees)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "SpanForest":
        """Reconstruct from a tracer's buffered window."""
        return cls.from_records(tracer.records())

    @classmethod
    def from_jsonl(cls, text_or_path: str | Path) -> "SpanForest":
        """Reconstruct from a JSONL export (string or file path).

        A leading ``{"meta": ...}`` line is tolerated and skipped.
        """
        if isinstance(text_or_path, Path):
            text = text_or_path.read_text(encoding="utf-8")
        else:
            text = text_or_path
        records = []
        for line in text.splitlines():
            if not line.strip():
                continue
            parsed = json.loads(line)
            if "meta" in parsed and "kind" not in parsed:
                continue
            records.append(TraceRecord(
                at_ms=parsed["at_ms"], kind=parsed["kind"],
                seq=parsed.get("seq", -1), a=parsed.get("a", -1),
                b=parsed.get("b", -1), detail=parsed.get("detail", ""),
                trace_id=parsed.get("trace_id", -1),
                span_id=parsed.get("span_id", -1),
                parent_id=parsed.get("parent_id", -1)))
        return cls.from_records(records)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._trees)

    def __iter__(self) -> Iterator[SpanTree]:
        return iter(self._trees)

    def trees(self, kind: str | None = None) -> list[SpanTree]:
        """All episodes, optionally filtered by episode kind."""
        if kind is None:
            return list(self._trees)
        return [t for t in self._trees if t.kind == kind]

    def tree(self, trace_id: int) -> SpanTree:
        """Episode by trace id."""
        return self._by_id[trace_id]

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def top_by_critical_path(self, limit: int = 10) -> list[TreeStats]:
        """Episodes ranked by critical-path virtual latency."""
        stats = [tree.stats() for tree in self._trees]
        stats.sort(key=lambda s: (-s.critical_path_ms, s.trace_id))
        return stats[:limit]

    def shape_signature(self, kinds: Optional[Sequence[str]] = None
                        ) -> tuple:
        """Order-free structural signature of the whole forest.

        The sorted tuple of :meth:`SpanTree.shape` over every episode
        (optionally restricted to the episode ``kinds`` of interest —
        live runs also trace ops probes and wire chatter that a sim
        twin never emits).  Two runs whose signatures are equal built
        causally identical episode trees, timestamps aside; this is
        the live-vs-sim conformance oracle for causal tracing.
        """
        trees = self._trees if kinds is None else [
            tree for tree in self._trees if tree.kind in set(kinds)]
        return tuple(sorted(tree.shape() for tree in trees))

    def cost_by_kind(self) -> dict[str, dict[str, float]]:
        """Message cost aggregated over every episode, by message kind."""
        out: dict[str, dict[str, float]] = {}
        for tree in self._trees:
            for kind, entry in tree.cost_by_kind().items():
                agg = out.setdefault(
                    kind, {"messages": 0, "delivered": 0,
                           "total_latency_ms": 0.0})
                agg["messages"] += entry["messages"]
                agg["delivered"] += entry["delivered"]
                agg["total_latency_ms"] += entry["total_latency_ms"]
        for agg in out.values():
            delivered = agg["delivered"]
            agg["mean_latency_ms"] = (
                agg["total_latency_ms"] / delivered if delivered else 0.0)
        return out

    def cost_by_episode_kind(self) -> dict[str, dict[str, float]]:
        """Cost aggregated by *episode* kind (protocol phase).

        This is the per-phase attribution the report prints: how many
        messages (and how much virtual-time) each protocol activity —
        announcement waves, subscription walks, dissemination floods,
        repair episodes — consumed.
        """
        out: dict[str, dict[str, float]] = {}
        for tree in self._trees:
            kind = tree.kind or "(unlabelled)"
            entry = out.setdefault(
                kind, {"episodes": 0, "messages": 0,
                       "total_critical_path_ms": 0.0,
                       "max_critical_path_ms": 0.0})
            critical = tree.critical_path_latency_ms()
            entry["episodes"] += 1
            entry["messages"] += len(tree.message_spans())
            entry["total_critical_path_ms"] += critical
            entry["max_critical_path_ms"] = max(
                entry["max_critical_path_ms"], critical)
        for entry in out.values():
            entry["mean_critical_path_ms"] = (
                entry["total_critical_path_ms"] / entry["episodes"])
        return out

    def validate(self) -> None:
        """Validate every episode (see :meth:`SpanTree.validate`)."""
        for tree in self._trees:
            tree.validate()


def _collect(root: Span) -> list[Span]:
    """``root`` and all spans reachable through children links."""
    out: list[Span] = []
    stack = [root]
    while stack:
        span = stack.pop()
        out.append(span)
        stack.extend(span.children)
    return out

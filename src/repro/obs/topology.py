"""Structural topology observatory: snapshots of the overlay over time.

The registry (PR 1) counts messages and the profiler (PR 4) samples
those counters over virtual time, but the paper's evaluation is mostly
*structural*: degree distributions (Figures 7-8), neighbor proximity
(Figures 9-10), spanning-tree delay penalty / stress (Figures 14-16).
A :class:`TopologyRecorder` makes those shapes first-class observables:
it rides the simulator clock exactly like the
:class:`~repro.obs.profiler.Profiler` — the engine calls
:meth:`TopologyRecorder.on_advance` before firing each event, the
recorder never schedules events of its own — and captures
delta-encoded :class:`TopologySnapshot` rows of the overlay graph and
the per-group spanning trees at a fixed virtual-time cadence.

Bit-transparency is a hard requirement (and pinned by tests): an
attached recorder must leave ``trace_digest`` and every experiment
output byte-identical.  Three rules keep it that way:

* no scheduled events — sampling rides ``on_advance`` so no event
  sequence number is ever consumed;
* no protocol randomness — the diameter estimate is a deterministic
  double-BFS sweep (:func:`pseudo_diameter`), never
  :meth:`~repro.overlay.graph.OverlayNetwork.estimated_diameter`
  which draws from an rng;
* no trace records — snapshots live in the recorder; only the
  :class:`~repro.obs.watchdog.WatchdogEngine` emits trace records,
  and only into an explicitly supplied tracer.

Structural metrics reuse :mod:`repro.metrics.overlay_metrics` and
:mod:`repro.metrics.tree_metrics`; snapshots export to JSON (consumed
by :mod:`repro.obs.diff` for cross-run regression gating) and Graphviz
DOT.  A process-wide default recorder mirrors the profiler idiom:
:func:`enable_topology` installs one, :class:`~repro.groupcast.session.
GroupSession` and :func:`~repro.deployment.build_deployment` attach to
it automatically, and everything costs one ``None`` check when
disabled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

from ..errors import OverlayError, PeerNotFoundError, TelemetryError
from .profiler import TimeSeries
from .registry import Registry

# NOTE: repro.metrics imports repro.groupcast which imports the sim
# engine which imports repro.obs — so the metric helpers
# (degree_histogram, power_law_fit, average_neighbor_distance_ms,
# overload_index) are imported lazily inside the methods that use them.

#: Default virtual-time snapshot cadence (ms).
TOPOLOGY_INTERVAL_MS = 500.0

#: Registry counters entering the transport conservation identity
#: (kept in sync with :mod:`repro.obs.report`).
_CONSERVATION_COUNTERS = (
    "net.sent", "faults.duplicated", "net.delivered", "net.lost",
    "net.dead_lettered", "faults.dropped", "faults.partition_dropped")


# ----------------------------------------------------------------------
# Snapshot rows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphDelta:
    """Overlay change since the previous snapshot of the same epoch."""

    added_peers: tuple[int, ...] = ()
    removed_peers: tuple[int, ...] = ()
    added_links: tuple[tuple[int, int], ...] = ()
    removed_links: tuple[tuple[int, int], ...] = ()

    @property
    def change_count(self) -> int:
        """Total number of vertex/edge changes carried by the delta."""
        return (len(self.added_peers) + len(self.removed_peers)
                + len(self.added_links) + len(self.removed_links))

    def to_dict(self) -> dict:
        return {
            "added_peers": list(self.added_peers),
            "removed_peers": list(self.removed_peers),
            "added_links": [list(link) for link in self.added_links],
            "removed_links": [list(link) for link in self.removed_links],
        }


@dataclass(frozen=True)
class TreeDelta:
    """Spanning-tree edge change of one group since the last snapshot."""

    group_id: int
    added_edges: tuple[tuple[int, int], ...] = ()
    removed_edges: tuple[tuple[int, int], ...] = ()

    @property
    def change_count(self) -> int:
        return len(self.added_edges) + len(self.removed_edges)

    def to_dict(self) -> dict:
        return {
            "group_id": self.group_id,
            "added_edges": [list(edge) for edge in self.added_edges],
            "removed_edges": [list(edge) for edge in self.removed_edges],
        }


@dataclass(frozen=True)
class TopologySnapshot:
    """One delta-encoded structural observation.

    ``epoch`` separates unrelated graphs (each :meth:`TopologyRecorder.
    watch_overlay` of a *new* overlay starts a fresh epoch whose first
    snapshot carries the full graph as its delta); ``kind`` records how
    the snapshot was taken (``cadence``/``observe``/``baseline``/
    ``final``).  ``metrics`` is a flat name→value map so snapshots
    compose into :class:`~repro.obs.profiler.TimeSeries` and diff
    field-by-field.
    """

    at_ms: float
    seq: int
    epoch: int
    kind: str
    peer_count: int
    link_count: int
    overlay_delta: GraphDelta
    tree_deltas: tuple[TreeDelta, ...] = ()
    degree_histogram: tuple[tuple[int, int], ...] = ()
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def structural_changes(self) -> int:
        """Vertex/edge changes (overlay + trees) since the previous
        snapshot of the same epoch."""
        return (self.overlay_delta.change_count
                + sum(d.change_count for d in self.tree_deltas))

    def to_dict(self) -> dict:
        return {
            "at_ms": self.at_ms,
            "seq": self.seq,
            "epoch": self.epoch,
            "kind": self.kind,
            "peer_count": self.peer_count,
            "link_count": self.link_count,
            "overlay_delta": self.overlay_delta.to_dict(),
            "tree_deltas": [d.to_dict() for d in self.tree_deltas],
            "degree_histogram": [list(pair)
                                 for pair in self.degree_histogram],
            "metrics": dict(self.metrics),
        }


# ----------------------------------------------------------------------
# Deterministic structural helpers
# ----------------------------------------------------------------------
def pseudo_diameter(overlay) -> int:
    """Double-BFS diameter lower bound of the largest component.

    Deterministic replacement for :meth:`~repro.overlay.graph.
    OverlayNetwork.estimated_diameter`, which samples sources from an
    rng — drawing from a protocol stream inside the observatory would
    shift every later random decision and break digest transparency.
    Start at the smallest peer id of the largest component, BFS to the
    farthest peer (smallest id on ties), BFS again; the second
    eccentricity is a classic tight lower bound.
    """
    ids = overlay.peer_ids()
    if len(ids) < 2:
        return 0
    seen: set[int] = set()
    largest: list[int] = []
    for start in sorted(ids):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in overlay.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.append(neighbor)
                    frontier.append(neighbor)
        if len(component) > len(largest):
            largest = component
    if len(largest) < 2:
        return 0
    dist = overlay.hop_distances_from(min(largest))
    far_d = max(dist.values())
    far = min(node for node, d in dist.items() if d == far_d)
    return max(overlay.hop_distances_from(far).values())


def tree_cost_metrics(tree, underlay) -> dict[str, float]:
    """Relative delay penalty and link stress of one spanning tree.

    Equivalent to running :func:`~repro.groupcast.dissemination.
    disseminate` and the :mod:`~repro.metrics.tree_metrics` ratios, but
    computed from pure underlay queries: the observatory must not call
    ``disseminate`` because that path falls back to the process-default
    tracer and would emit records into the run's digest.
    """
    from ..network.multicast import build_ip_multicast_tree

    members = [m for m in tree.members if m != tree.root]
    if not members:
        return {}
    delays = {tree.root: 0.0}
    ip_messages = 0
    frontier = [tree.root]
    while frontier:
        parent = frontier.pop()
        children = tree.children(parent)
        if not children:
            continue
        latencies = underlay.peer_distances_ms(parent, children)
        hops = underlay.peer_hop_counts(parent, children)
        for child, latency, hop in zip(children, latencies, hops):
            delays[child] = delays[parent] + float(latency)
            ip_messages += int(hop)
            frontier.append(child)
    esm_delay = sum(delays[m] for m in members) / len(members)
    ip_tree = build_ip_multicast_tree(underlay, tree.root, members)
    out: dict[str, float] = {}
    if ip_tree.average_delay_ms > 0.0:
        out["delay_penalty"] = esm_delay / ip_tree.average_delay_ms
    if ip_tree.link_count > 0:
        out["link_stress"] = ip_messages / ip_tree.link_count
    return out


# ----------------------------------------------------------------------
# The recorder
# ----------------------------------------------------------------------
class TopologyRecorder:
    """Captures delta-encoded structural snapshots on a virtual-time
    cadence.

    Attach with ``simulator.topology = recorder`` (done by
    :meth:`watch_session`) or drive it manually via :meth:`snapshot` /
    :meth:`observe_tree` from procedural code that never touches a
    simulator.  ``detail="structure"`` (default) keeps per-snapshot
    cost to set captures, BFS components and a degree fit;
    ``detail="full"`` adds underlay-backed metrics (mean neighbor
    distance) that are too expensive for a hot cadence on large
    overlays.

    ``registry`` defaults to a *private* registry so ``topology.*`` /
    ``watchdog.*`` counters never contaminate a ``--telemetry``
    snapshot of the experiment itself; pass
    :func:`~repro.obs.registry.get_default_registry` explicitly to fold
    them in.
    """

    def __init__(self, interval_ms: float = TOPOLOGY_INTERVAL_MS,
                 enabled: bool = True, detail: str = "structure",
                 registry: Optional[Registry] = None,
                 tracer=None, clock=None) -> None:
        if interval_ms <= 0.0:
            raise TelemetryError("topology interval must be positive")
        if detail not in ("structure", "full"):
            raise TelemetryError(
                f"detail must be 'structure' or 'full', got {detail!r}")
        self.interval_ms = interval_ms
        self.enabled = enabled
        self.detail = detail
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.clock = clock
        self._snapshots: list[TopologySnapshot] = []
        self._epoch = 0
        self._next_sample_ms = 0.0
        self._last_sampled_ms: float | None = None
        # Watched structures (all optional, all observed read-only).
        self._overlay = None
        self._underlay = None
        self._session = None
        self._maintenance = None
        self._conservation_registry: Optional[Registry] = None
        self._trees: dict[int, object] = {}
        # Current absolute state = baseline for the next delta.
        self._cur_peers: frozenset[int] = frozenset()
        self._cur_links: frozenset[tuple[int, int]] = frozenset()
        self._cur_tree_edges: dict[int, frozenset] = {}
        self._engine = None  # lazy WatchdogEngine
        self._c_snapshots = self.registry.counter("topology.snapshots")
        self._c_observations = self.registry.counter(
            "topology.observations")

    # ------------------------------------------------------------------
    # Watch targets
    # ------------------------------------------------------------------
    @property
    def overlay(self):
        """The currently watched overlay (None when unwatched)."""
        return self._overlay

    @property
    def maintenance(self):
        """The watched maintenance daemon (for heartbeat watchdogs)."""
        return self._maintenance

    @property
    def epoch(self) -> int:
        """Epoch counter; bumped by every newly watched overlay."""
        return self._epoch

    def watch_overlay(self, overlay, underlay=None,
                      baseline_at_ms: float | None = None) -> None:
        """Observe an overlay graph; a *new* overlay starts a new epoch.

        Re-watching the overlay already under observation only refreshes
        the optional ``underlay`` (used for full-detail metrics).  A new
        overlay resets the delta baseline, drops stale session/tree/
        maintenance references from the previous epoch, and — when
        ``baseline_at_ms`` is given — takes an immediate ``baseline``
        snapshot carrying the full graph as its delta.
        """
        if overlay is self._overlay:
            if underlay is not None:
                self._underlay = underlay
            return
        self._overlay = overlay
        self._underlay = underlay
        self._session = None
        self._maintenance = None
        self._conservation_registry = None
        self._trees = {}
        self._epoch += 1
        self._next_sample_ms = 0.0
        self._last_sampled_ms = None
        self._cur_peers = frozenset()
        self._cur_links = frozenset()
        self._cur_tree_edges = {}
        self.registry.counter("topology.epochs").inc()
        if self._engine is not None:
            self._engine.new_epoch()
        if baseline_at_ms is not None and self.enabled:
            self.snapshot(baseline_at_ms, kind="baseline")

    def watch_session(self, session) -> None:
        """Observe a :class:`~repro.groupcast.session.GroupSession`.

        Watches its overlay (new epoch unless already watched), derives
        one spanning tree per established group from the per-node
        upstream pointers at every snapshot, reads its registry for the
        conservation gap, and rides its simulator clock.
        """
        if session is self._session:
            return
        self.watch_overlay(session.overlay)
        self._session = session
        self._conservation_registry = session.registry
        session.simulator.topology = self

    def watch_cluster(self, cluster) -> None:
        """Observe a live :class:`~repro.runtime.cluster.RuntimeCluster`.

        The runtime twin of :meth:`watch_session`: watches the
        cluster's overlay (new epoch unless already watched), derives
        per-group spanning trees from the peers' upstream pointers at
        every snapshot, and reads the cluster registry for the
        conservation gap.  No simulator is attached — drive the
        cadence with :meth:`tick` from a telemetry pump, using the
        transport wall clock.
        """
        if cluster is self._session:
            return
        self.watch_overlay(cluster.overlay)
        self._session = cluster
        self._conservation_registry = cluster.registry

    def watch_tree(self, group_id: int, tree) -> None:
        """Track a :class:`~repro.groupcast.spanning_tree.SpanningTree`
        object in every subsequent snapshot."""
        self._trees[group_id] = tree

    def watch_maintenance(self, daemon) -> None:
        """Provide the maintenance daemon heartbeat watchdogs inspect."""
        self._maintenance = daemon

    def watch_conservation(self, registry: Registry) -> None:
        """Read ``net.*`` counters of ``registry`` into a
        ``conservation.gap`` metric each snapshot."""
        self._conservation_registry = registry

    def attach(self, simulator) -> None:
        """Ride ``simulator``'s clock (sets ``simulator.topology``)."""
        simulator.topology = self

    # ------------------------------------------------------------------
    # Watchdogs
    # ------------------------------------------------------------------
    def add_watchdog(self, rule) -> None:
        """Evaluate ``rule`` against every snapshot (see
        :mod:`repro.obs.watchdog`)."""
        if self._engine is None:
            from .watchdog import WatchdogEngine

            self._engine = WatchdogEngine(registry=self.registry,
                                          tracer=self.tracer)
        self._engine.add(rule)

    @property
    def watchdogs(self):
        """The attached :class:`~repro.obs.watchdog.WatchdogEngine`
        (None until the first :meth:`add_watchdog`)."""
        return self._engine

    @property
    def alerts(self) -> list:
        """Every watchdog alert raised so far (all epochs)."""
        return [] if self._engine is None else list(self._engine.alerts)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def on_advance(self, now_ms: float) -> None:
        """Engine hook: the virtual clock is about to reach ``now_ms``.

        Mirrors :meth:`~repro.obs.profiler.Profiler.on_advance`: only
        the latest crossed cadence boundary is materialized, and the
        snapshot sees pre-event state because the engine calls the hook
        before dispatching.
        """
        if not self.enabled or now_ms < self._next_sample_ms:
            return
        if self._overlay is None and self._session is None \
                and not self._trees:
            return
        at_ms = int(now_ms / self.interval_ms) * self.interval_ms
        self.snapshot(at_ms)
        self._next_sample_ms = at_ms + self.interval_ms

    def tick(self, kind: str = "cadence") -> Optional["TopologySnapshot"]:
        """Snapshot at the attached clock's current time.

        The live-pump entry point (mirrors
        :meth:`~repro.obs.profiler.Profiler.tick`): wall-clock sampling
        for recorders watching a :class:`~repro.runtime.cluster.
        RuntimeCluster`, where no simulator drives :meth:`on_advance`.
        May raise :class:`~repro.errors.WatchdogHalt` when a
        halt-action watchdog fires on the captured snapshot.
        """
        if self.clock is None:
            raise TelemetryError("topology recorder has no clock attached")
        return self.snapshot(float(self.clock()), kind=kind)

    def snapshot(self, at_ms: float, kind: str = "cadence",
                 extra_metrics: Optional[Mapping[str, float]] = None
                 ) -> Optional[TopologySnapshot]:
        """Capture one snapshot stamped ``at_ms``; returns it (or None
        when disabled / deduplicated).

        ``extra_metrics`` merges caller-computed values (e.g. a delay
        penalty the experiment already measured) into the snapshot
        before watchdogs evaluate it.
        """
        if not self.enabled:
            return None
        if kind in ("cadence", "final") \
                and self._last_sampled_ms is not None \
                and at_ms <= self._last_sampled_ms:
            return None
        peers, links = self._capture_overlay()
        tree_edges = self._capture_trees()
        delta = GraphDelta(
            added_peers=tuple(sorted(peers - self._cur_peers)),
            removed_peers=tuple(sorted(self._cur_peers - peers)),
            added_links=tuple(sorted(links - self._cur_links)),
            removed_links=tuple(sorted(self._cur_links - links)))
        tree_deltas = []
        for group_id in sorted(set(self._cur_tree_edges) | set(tree_edges)):
            old = self._cur_tree_edges.get(group_id, frozenset())
            new = tree_edges.get(group_id, frozenset())
            added = tuple(sorted(new - old))
            removed = tuple(sorted(old - new))
            if added or removed or group_id not in self._cur_tree_edges:
                tree_deltas.append(TreeDelta(group_id, added, removed))
        metrics = self._metrics(peers, links, tree_edges)
        if extra_metrics:
            metrics.update(
                {name: float(value)
                 for name, value in extra_metrics.items()})
        snapshot = TopologySnapshot(
            at_ms=at_ms, seq=len(self._snapshots), epoch=self._epoch,
            kind=kind, peer_count=len(peers), link_count=len(links),
            overlay_delta=delta, tree_deltas=tuple(tree_deltas),
            degree_histogram=self._degree_pairs(),
            metrics=metrics)
        self._snapshots.append(snapshot)
        self._cur_peers = peers
        self._cur_links = links
        self._cur_tree_edges = tree_edges
        if self._last_sampled_ms is None \
                or at_ms > self._last_sampled_ms:
            self._last_sampled_ms = at_ms
        self._c_snapshots.inc()
        if self._engine is not None and self._engine.rules:
            self._engine.evaluate(snapshot, self)
        return snapshot

    def observe_tree(self, tree, group_id: int = 0,
                     at_ms: float | None = None,
                     extra_metrics: Optional[Mapping[str, float]] = None,
                     underlay=None,
                     compute_costs: bool = False
                     ) -> Optional[TopologySnapshot]:
        """One-off observation of a finished tree (procedural paths).

        The sweep experiments build trees without a simulator, so there
        is no clock to ride; each call registers ``tree`` under
        ``group_id`` and takes an ``observe`` snapshot.  Cost ratios the
        caller already measured arrive via ``extra_metrics`` (prefixed
        ``tree.<group_id>.``); ``compute_costs=True`` derives them from
        the underlay instead via :func:`tree_cost_metrics`.
        """
        if not self.enabled:
            return None
        self._trees[group_id] = tree
        if underlay is not None:
            self._underlay = underlay
        extras = {f"tree.{group_id}.{name}": float(value)
                  for name, value in (extra_metrics or {}).items()}
        if compute_costs and self._underlay is not None:
            extras.update(
                {f"tree.{group_id}.{name}": value
                 for name, value in
                 tree_cost_metrics(tree, self._underlay).items()})
        stamp = at_ms if at_ms is not None \
            else (self._last_sampled_ms or 0.0)
        self._c_observations.inc()
        return self.snapshot(stamp, kind="observe", extra_metrics=extras)

    def finish(self, now_ms: float) -> None:
        """Take a final closing snapshot at the run's end time."""
        if self.enabled and (self._overlay is not None
                             or self._session is not None
                             or self._trees):
            self.snapshot(now_ms, kind="final")

    # ------------------------------------------------------------------
    # Capture internals
    # ------------------------------------------------------------------
    def _capture_overlay(self):
        overlay = self._overlay
        if overlay is None:
            return frozenset(), frozenset()
        return (frozenset(overlay.peer_ids()),
                frozenset(overlay.edges()))

    def _capture_trees(self) -> dict[int, frozenset]:
        out: dict[int, frozenset] = {}
        for group_id, tree in self._trees.items():
            out[group_id] = frozenset(tree.edges())
        session = self._session
        if session is not None:
            for group_id in session.rendezvous:
                edges = set()
                for peer_id, node in session.nodes.items():
                    state = node.groups.get(group_id)
                    if state is not None and state.on_tree \
                            and state.upstream is not None:
                        edges.add((state.upstream, peer_id))
                out[group_id] = frozenset(edges)
        return out

    def _degree_pairs(self) -> tuple[tuple[int, int], ...]:
        if self._overlay is None:
            return ()
        from ..metrics.overlay_metrics import degree_histogram

        values, counts = degree_histogram(self._overlay)
        return tuple((int(v), int(c)) for v, c in zip(values, counts))

    def _metrics(self, peers: frozenset, links: frozenset,
                 tree_edges: dict[int, frozenset]) -> dict[str, float]:
        metrics: dict[str, float] = {}
        overlay = self._overlay
        if overlay is not None:
            from ..metrics.overlay_metrics import (
                average_neighbor_distance_ms,
                degree_histogram,
                power_law_fit,
            )

            metrics["overlay.peers"] = float(len(peers))
            metrics["overlay.links"] = float(len(links))
            sizes = overlay.connected_component_sizes()
            metrics["overlay.components"] = float(len(sizes))
            if sizes and peers:
                metrics["overlay.largest_component_fraction"] = \
                    sizes[0] / len(peers)
            degrees = overlay.degrees()
            if degrees.size:
                metrics["overlay.degree_mean"] = float(degrees.mean())
                metrics["overlay.degree_max"] = float(degrees.max())
            metrics["overlay.diameter"] = float(pseudo_diameter(overlay))
            values, counts = degree_histogram(overlay)
            try:
                exponent, r_squared = power_law_fit(values, counts)
                metrics["overlay.degree_powerlaw_exponent"] = exponent
                metrics["overlay.degree_powerlaw_r2"] = r_squared
            except OverlayError:
                pass  # fewer than three distinct degrees
            if self.detail == "full" and self._underlay is not None \
                    and peers:
                distances = average_neighbor_distance_ms(
                    overlay, self._underlay)
                if distances.size:
                    metrics["overlay.neighbor_distance_mean_ms"] = \
                        float(distances.mean())
        for group_id in sorted(tree_edges):
            metrics.update(self._tree_metrics(
                group_id, tree_edges[group_id]))
        gap = self._conservation_gap()
        if gap is not None:
            metrics["conservation.gap"] = gap
        return metrics

    def _tree_metrics(self, group_id: int,
                      edges: frozenset) -> dict[str, float]:
        prefix = f"tree.{group_id}"
        root = self._tree_root(group_id)
        children: dict[int, list[int]] = {}
        nodes: set[int] = set() if root is None else {root}
        for parent, child in edges:
            children.setdefault(parent, []).append(child)
            nodes.add(parent)
            nodes.add(child)
        out = {f"{prefix}.nodes": float(len(nodes)),
               f"{prefix}.edges": float(len(edges))}
        fanouts = [len(kids) for kids in children.values()]
        out[f"{prefix}.max_fanout"] = float(max(fanouts)) if fanouts \
            else 0.0
        out[f"{prefix}.node_stress"] = \
            sum(fanouts) / len(fanouts) if fanouts else 0.0
        if root is not None:
            depth = 0
            seen = {root}
            frontier = [root]
            while frontier:
                depth_next: list[int] = []
                for node in frontier:
                    for child in children.get(node, ()):
                        if child not in seen:
                            seen.add(child)
                            depth_next.append(child)
                if depth_next:
                    depth += 1
                frontier = depth_next
            out[f"{prefix}.depth"] = float(depth)
        out.update(self._tree_membership(group_id, prefix, nodes))
        out.update(self._tree_overload(prefix, children))
        return out

    def _tree_root(self, group_id: int) -> Optional[int]:
        session = self._session
        if session is not None and group_id in session.rendezvous:
            return session.rendezvous[group_id]
        tree = self._trees.get(group_id)
        return None if tree is None else tree.root

    def _tree_membership(self, group_id: int, prefix: str,
                         nodes: set[int]) -> dict[str, float]:
        session = self._session
        if session is not None and group_id in session.rendezvous:
            members = on_tree = 0
            for node in session.nodes.values():
                state = node.groups.get(group_id)
                if state is not None and state.is_member:
                    members += 1
                    if state.on_tree:
                        on_tree += 1
            broken = len(session.broken_upstream_peers(group_id))
            return {f"{prefix}.members": float(members),
                    f"{prefix}.orphans": float(members - on_tree),
                    f"{prefix}.broken_upstreams": float(broken)}
        tree = self._trees.get(group_id)
        if tree is None:
            return {}
        members = tree.members
        orphans = sum(1 for m in members if m not in nodes)
        return {f"{prefix}.members": float(len(members)),
                f"{prefix}.orphans": float(orphans)}

    def _tree_overload(self, prefix: str,
                       children: dict[int, list[int]]
                       ) -> dict[str, float]:
        overlay = self._overlay
        if overlay is None or not children:
            return {}
        from ..metrics.tree_metrics import overload_index

        workloads = {node: len(kids)
                     for node, kids in children.items() if kids}
        try:
            capacities = {node: overlay.peer(node).capacity
                          for node in workloads}
        except (PeerNotFoundError, OverlayError):
            return {}  # a forwarder left the overlay mid-window
        return {f"{prefix}.overload_index":
                overload_index(workloads, capacities)}

    def _conservation_gap(self) -> Optional[float]:
        registry = self._conservation_registry
        if registry is None or registry.get("net.sent") is None:
            return None
        values = {name: (registry.get(name).value
                         if registry.get(name) is not None else 0)
                  for name in _CONSERVATION_COUNTERS}
        return float(
            values["net.sent"] + values["faults.duplicated"]
            - values["net.delivered"] - values["net.lost"]
            - values["net.dead_lettered"] - values["faults.dropped"]
            - values["faults.partition_dropped"])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def snapshots(self) -> tuple[TopologySnapshot, ...]:
        """Every captured snapshot, oldest first."""
        return tuple(self._snapshots)

    def latest(self) -> Optional[TopologySnapshot]:
        """The most recent snapshot, or None."""
        return self._snapshots[-1] if self._snapshots else None

    def series(self, name: str,
               epoch: int | None = None) -> TimeSeries:
        """The metric ``name`` across snapshots as a gauge
        :class:`~repro.obs.profiler.TimeSeries` (optionally one epoch)."""
        series = TimeSeries(name, "gauge")
        for snapshot in self._snapshots:
            if epoch is not None and snapshot.epoch != epoch:
                continue
            value = snapshot.metrics.get(name)
            if value is not None:
                series.points.append((snapshot.at_ms, value))
        return series

    def metric_names(self) -> list[str]:
        """Every metric name observed in any snapshot, sorted."""
        names: set[str] = set()
        for snapshot in self._snapshots:
            names.update(snapshot.metrics)
        return sorted(names)

    def all_series(self) -> list[TimeSeries]:
        """One series per observed metric, sorted by name."""
        return [self.series(name) for name in self.metric_names()]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Full JSON-serializable artifact (input to
        :mod:`repro.obs.diff`)."""
        engine = self._engine
        return {
            "meta": {
                "interval_ms": self.interval_ms,
                "detail": self.detail,
                "epochs": self._epoch,
                "snapshots": len(self._snapshots),
                "watchdogs": [] if engine is None
                else [rule.name for rule in engine.rules],
            },
            "snapshots": [s.to_dict() for s in self._snapshots],
            "final": {
                "epoch": self._epoch,
                "peers": sorted(self._cur_peers),
                "links": [list(link)
                          for link in sorted(self._cur_links)],
                "trees": {str(group_id): [list(edge)
                                          for edge in sorted(edges)]
                          for group_id, edges
                          in sorted(self._cur_tree_edges.items())},
            },
            "alerts": [alert.to_dict() for alert in self.alerts],
        }

    def export_json(self, path: str | Path) -> Path:
        """Write :meth:`to_dict` to ``path`` as deterministic JSON."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return target

    def to_dot(self) -> str:
        """The latest captured graph in Graphviz DOT.

        Overlay links render gray; links carried by any group's
        spanning tree render bold; tree edges with no surviving overlay
        link (e.g. during a partition window) render dashed red —
        exactly the repair debt a partition watchdog flags.
        """
        tree_links: set[tuple[int, int]] = set()
        for edges in self._cur_tree_edges.values():
            for a, b in edges:
                tree_links.add((min(a, b), max(a, b)))
        member_ids: set[int] = set()
        session = self._session
        if session is not None:
            for node in session.nodes.values():
                if any(state.is_member
                       for state in node.groups.values()):
                    member_ids.add(node.peer_id)
        for tree in self._trees.values():
            member_ids.update(tree.members)
        lines = ["graph topology {",
                 "  graph [overlap=false];",
                 "  node [shape=circle, fontsize=8];"]
        for peer in sorted(self._cur_peers):
            style = " style=filled fillcolor=lightblue" \
                if peer in member_ids else ""
            lines.append(f"  n{peer} [label=\"{peer}\"{style}];")
        for a, b in sorted(self._cur_links):
            if (a, b) in tree_links:
                lines.append(f"  n{a} -- n{b} [penwidth=2];")
            else:
                lines.append(f"  n{a} -- n{b} [color=gray];")
        overlay_links = set(self._cur_links)
        for a, b in sorted(tree_links - overlay_links):
            lines.append(
                f"  n{a} -- n{b} [style=dashed, color=red];")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def export_dot(self, path: str | Path) -> Path:
        """Write :meth:`to_dot` to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_dot(), encoding="utf-8")
        return target

    # ------------------------------------------------------------------
    # Report sections (duck-typed by :mod:`repro.obs.report`)
    # ------------------------------------------------------------------
    def report_section(self) -> dict:
        """Summary dict for the ``topology`` report section."""
        latest = self.latest()
        section: dict = {
            "snapshots": len(self._snapshots),
            "epochs": self._epoch,
            "interval_ms": self.interval_ms,
            "detail": self.detail,
        }
        if latest is not None:
            section["last"] = {
                "at_ms": latest.at_ms,
                "epoch": latest.epoch,
                "peer_count": latest.peer_count,
                "link_count": latest.link_count,
                "metrics": dict(sorted(latest.metrics.items())),
            }
        section["series"] = [series.summary()
                             for series in self.all_series()]
        return section

    def watchdog_section(self) -> Optional[dict]:
        """Summary dict for the ``watchdog`` report section."""
        return None if self._engine is None else self._engine.summary()


# ----------------------------------------------------------------------
# Process-wide default (mirrors the profiler idiom)
# ----------------------------------------------------------------------
_default_recorder: Optional[TopologyRecorder] = None


def get_default_topology_recorder() -> Optional[TopologyRecorder]:
    """The process-wide recorder (None unless installed)."""
    return _default_recorder


def set_default_topology_recorder(
        recorder: Optional[TopologyRecorder]
) -> Optional[TopologyRecorder]:
    """Install ``recorder`` as the default; returns the previous one."""
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    return previous


def enable_topology(interval_ms: float = TOPOLOGY_INTERVAL_MS,
                    detail: str = "structure",
                    registry: Optional[Registry] = None,
                    tracer=None) -> TopologyRecorder:
    """Install and return a fresh default topology recorder.

    :class:`~repro.groupcast.session.GroupSession` construction and
    :func:`~repro.deployment.build_deployment` auto-attach to the
    default recorder, so enabling this before running an experiment is
    all the wiring a caller needs (the runner's ``--topology`` flag
    does exactly this).
    """
    recorder = TopologyRecorder(interval_ms=interval_ms, detail=detail,
                                registry=registry, tracer=tracer)
    set_default_topology_recorder(recorder)
    return recorder


def disable_topology() -> None:
    """Remove the default recorder (new sessions stop attaching)."""
    set_default_topology_recorder(None)

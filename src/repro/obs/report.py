"""Per-run experiment reports: causality, time-series, invariants.

Assembles everything the observability layer captured during one run —
span trees from the :class:`~repro.obs.tracer.Tracer`, cadence
time-series and wall-clock phases from the
:class:`~repro.obs.profiler.Profiler`, counter state from the
:class:`~repro.obs.registry.Registry`, and invariant outcomes from a
:class:`~repro.faults.invariants.InvariantSuite` — into one plain-dict
report, rendered as Markdown for humans and JSON for CI diffing.

The report answers the questions a run leaves open:

* which causal episodes dominated latency (top spans by virtual-time
  critical path);
* where the messages went (cost by message kind and by protocol phase);
* how activity unfolded over virtual time (series summaries) and where
  the host CPU went (phase timers);
* whether the run was *sound* (invariant checks, transport counter
  conservation, trace-ring drops).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .causality import SpanForest
from .profiler import Profiler
from .registry import Registry
from .tracer import Tracer

#: Registry counters entering the transport conservation identity.
_CONSERVATION_COUNTERS = (
    "net.sent", "faults.duplicated", "net.delivered", "net.lost",
    "net.dead_lettered", "faults.dropped", "faults.partition_dropped")


def build_report(
    title: str,
    tracer: Optional[Tracer] = None,
    registry: Optional[Registry] = None,
    profiler: Optional[Profiler] = None,
    invariant_suite=None,
    topology=None,
    live=None,
    slo=None,
    top: int = 10,
) -> dict:
    """Assemble one run's observability state into a report dict.

    Every section is optional — pass whatever the run actually had.
    ``topology`` accepts a :class:`~repro.obs.topology.TopologyRecorder`
    (duck-typed via its ``report_section``/``watchdog_section``);
    ``live`` a :class:`~repro.obs.live.LiveTelemetry` (duck-typed via
    ``live_section``); ``slo`` a :class:`~repro.obs.slo.SLOEngine` or
    :class:`~repro.obs.slo.AttainmentTable` (duck-typed via
    ``summary``).  The result is JSON-serializable as-is.
    """
    report: dict = {"title": title}

    if tracer is not None:
        forest = SpanForest.from_tracer(tracer)
        report["trace"] = tracer.export_meta()
        report["episodes"] = {
            "count": len(forest),
            "top_by_critical_path": [
                {
                    "trace_id": s.trace_id,
                    "kind": s.kind,
                    "spans": s.span_count,
                    "messages": s.message_count,
                    "depth": s.depth,
                    "max_fan_out": s.max_fan_out,
                    "critical_path_ms": s.critical_path_ms,
                    "critical_path_hops": s.critical_path_hops,
                }
                for s in forest.top_by_critical_path(top)
            ],
            "cost_by_kind": forest.cost_by_kind(),
            "cost_by_episode_kind": forest.cost_by_episode_kind(),
        }

    if registry is not None:
        report["counters"] = registry.snapshot()
        report["conservation"] = _conservation(registry)

    if profiler is not None:
        report["series"] = [s.summary() for s in profiler.all_series()]
        report["phases"] = profiler.phase_stats()

    if topology is not None:
        report["topology"] = topology.report_section()
        watchdog = topology.watchdog_section()
        if watchdog is not None:
            report["watchdog"] = watchdog

    if live is not None:
        report["live"] = live.live_section()

    if slo is not None:
        report["slo"] = slo.summary()

    if invariant_suite is not None:
        report["invariants"] = {
            "checks": invariant_suite.registry.counter(
                "invariants.checks").value,
            "violations": len(invariant_suite.violations),
            "by_checker": invariant_suite.violations_by_checker(),
            "first_violations": [
                {"at_ms": v.at_ms, "checker": v.checker,
                 "message": v.message}
                for v in invariant_suite.violations[:5]
            ],
        }

    return report


def _conservation(registry: Registry) -> Optional[dict]:
    """Transport conservation identity from registry counters.

    ``sent + duplicated == delivered + lost + dead_lettered + dropped +
    partition_dropped`` once a run has drained (no in-flight messages).
    Returns None when the run never used the message transport.
    """
    if registry.get("net.sent") is None:
        return None
    values = {name: (registry.get(name).value
                     if registry.get(name) is not None else 0)
              for name in _CONSERVATION_COUNTERS}
    gap = (values["net.sent"] + values["faults.duplicated"]
           - values["net.delivered"] - values["net.lost"]
           - values["net.dead_lettered"] - values["faults.dropped"]
           - values["faults.partition_dropped"])
    return {**values, "gap": gap, "balanced": gap == 0}


# ----------------------------------------------------------------------
# Markdown rendering
# ----------------------------------------------------------------------
def render_markdown(report: dict) -> str:
    """Human-facing Markdown view of a :func:`build_report` dict."""
    lines: list[str] = [f"# {report['title']}", ""]

    trace = report.get("trace")
    if trace is not None:
        lines += ["## Trace stream", ""]
        lines.append(f"- records: {trace['total_records']} total, "
                     f"{trace['buffered_records']} buffered, "
                     f"**{trace['dropped_records']} dropped** "
                     f"(ring capacity {trace['capacity']})")
        if trace.get("stream_dropped"):
            lines.append(f"- **{trace['stream_dropped']} records missed "
                         "by the streaming drain** (pump fell behind "
                         "the ring)")
        lines.append(f"- digest: `{trace['trace_digest']}`")
        lines.append("")

    episodes = report.get("episodes")
    if episodes is not None:
        lines += [f"## Causal episodes ({episodes['count']})", ""]
        rows = episodes["top_by_critical_path"]
        if rows:
            lines += [
                "Top episodes by virtual-time critical path:", "",
                "| trace | kind | spans | msgs | depth | fan-out "
                "| critical path (ms) | hops |",
                "|---|---|---|---|---|---|---|---|",
            ]
            for row in rows:
                lines.append(
                    f"| {row['trace_id']} | {row['kind']} "
                    f"| {row['spans']} | {row['messages']} "
                    f"| {row['depth']} | {row['max_fan_out']} "
                    f"| {row['critical_path_ms']:.3f} "
                    f"| {row['critical_path_hops']} |")
            lines.append("")
        lines += _cost_table(
            "Message cost by kind", episodes["cost_by_kind"],
            key_header="message kind")
        lines += _episode_cost_table(episodes["cost_by_episode_kind"])

    conservation = report.get("conservation")
    if conservation is not None:
        verdict = "balanced" if conservation["balanced"] \
            else f"GAP {conservation['gap']}"
        lines += ["## Transport conservation", "",
                  f"- sent {conservation['net.sent']} "
                  f"+ duplicated {conservation['faults.duplicated']} "
                  f"= delivered {conservation['net.delivered']} "
                  f"+ lost {conservation['net.lost']} "
                  f"+ dead-lettered {conservation['net.dead_lettered']} "
                  f"+ dropped {conservation['faults.dropped']} "
                  f"+ partition-dropped "
                  f"{conservation['faults.partition_dropped']} "
                  f"→ **{verdict}**",
                  ""]

    topology = report.get("topology")
    if topology is not None:
        lines += ["## Topology", "",
                  f"- {topology['snapshots']} snapshots across "
                  f"{topology['epochs']} epoch(s) at "
                  f"{topology['interval_ms']:.0f} ms cadence "
                  f"(detail: {topology['detail']})"]
        last = topology.get("last")
        if last is not None:
            lines.append(
                f"- final state at {last['at_ms']:.1f} ms: "
                f"{last['peer_count']} peers, "
                f"{last['link_count']} links")
            lines += ["", "| structural metric | final value |",
                      "|---|---|"]
            for name, value in last["metrics"].items():
                lines.append(f"| {name} | {value:.4g} |")
        lines.append("")

    watchdog = report.get("watchdog")
    if watchdog is not None:
        lines += ["## Watchdog alerts", "",
                  f"- rules: {', '.join(watchdog['rules']) or '(none)'}",
                  f"- **{watchdog['fired']} fired**, "
                  f"{watchdog['cleared']} cleared; "
                  f"still active: "
                  f"{', '.join(watchdog['active']) or 'none'}"]
        for rule, counts in watchdog["by_rule"].items():
            lines.append(f"  - {rule}: {counts['fired']} fired, "
                         f"{counts['cleared']} cleared")
        for alert in watchdog["warnings"]:
            lines.append(f"  - WARN at {alert['at_ms']:.1f} ms "
                         f"[{alert['rule']}] {alert['message']}")
        lines.append("")

    invariants = report.get("invariants")
    if invariants is not None:
        lines += ["## Invariant checks", "",
                  f"- {invariants['checks']} checks, "
                  f"**{invariants['violations']} violations**"]
        for name, count in sorted(invariants["by_checker"].items()):
            lines.append(f"  - {name}: {count}")
        for violation in invariants["first_violations"]:
            lines.append(f"  - at {violation['at_ms']:.1f} ms "
                         f"[{violation['checker']}] "
                         f"{violation['message']}")
        lines.append("")

    series = report.get("series")
    if series:
        lines += ["## Metric time-series", "",
                  "| instrument | kind | samples | summary |",
                  "|---|---|---|---|"]
        for summary in series:
            detail = _series_detail(summary)
            lines.append(f"| {summary['name']} | {summary['kind']} "
                         f"| {summary['samples']} | {detail} |")
        lines.append("")

    phases = report.get("phases")
    if phases:
        lines += ["## Wall-clock phases", "",
                  "| phase | calls | total (s) | mean (ms) |",
                  "|---|---|---|---|"]
        for name, stats in phases.items():
            lines.append(f"| {name} | {int(stats['calls'])} "
                         f"| {stats['total_s']:.4f} "
                         f"| {stats['mean_ms']:.4f} |")
        lines.append("")

    live = report.get("live")
    if live is not None:
        lines += _live_section(live)

    slo = report.get("slo")
    if slo is not None:
        lines += _slo_section(slo)

    return "\n".join(lines)


def _slo_section(slo: dict) -> list[str]:
    """Render per-tenant SLO attainment: objectives, CDF, worst-N."""
    lines = ["## Per-tenant SLO attainment", ""]
    spec = slo.get("spec", {})
    objectives = []
    if spec.get("min_delivery_ratio") is not None:
        objectives.append(
            f"delivery ≥ {spec['min_delivery_ratio']:g}")
    if spec.get("max_p99_delay_ms") is not None:
        objectives.append(f"p99 ≤ {spec['max_p99_delay_ms']:g} ms")
    if spec.get("max_repair_ms") is not None:
        objectives.append(f"repair ≤ {spec['max_repair_ms']:g} ms")
    lines.append(f"- objectives: {', '.join(objectives) or '(none)'} "
                 f"(window {spec.get('window', '?')}, burn threshold "
                 f"{spec.get('burn_threshold', '?')}x)")
    attainment = slo.get("attainment")
    if attainment is not None:
        cdf = attainment["cdf"]
        lines.append(
            f"- **{attainment['attained']} of {attainment['tenants']} "
            f"tenants attained** "
            f"({cdf['attained_fraction']:.1%})")
        levels = ", ".join(
            f"≥{level}: {fraction:.1%}"
            for level, fraction in cdf["levels"].items())
        lines.append(f"- delivery-ratio CDF: {levels}")
        worst = attainment.get("worst")
        if worst:
            lines += ["", "Worst tenants (lowest delivery first):", "",
                      "| tenant | groups | members | delivered "
                      "| ratio | p99 (ms) | depth | attained |",
                      "|---|---|---|---|---|---|---|---|"]
            for row in worst:
                p99 = row.get("p99_ms")
                p99_cell = f"{p99:.2f}" if p99 is not None else "-"
                lines.append(
                    f"| {row['tenant']} | {row['groups']} "
                    f"| {row['members']} | {row['delivered']} "
                    f"| {row['delivery_ratio']:.4f} | {p99_cell} "
                    f"| {row['depth']} "
                    f"| {'yes' if row['attained'] else '**NO**'} |")
    burn = slo.get("burn")
    if burn:
        lines += ["", "Live error-budget burn (worst first):", "",
                  "| tenant | burn | delivery | orphans | members |",
                  "|---|---|---|---|---|"]
        for row in burn:
            lines.append(
                f"| {row['tenant']} | {row['burn']:.2f}x "
                f"| {row['delivery_ratio']:.3f} "
                f"| {row['orphans']:.0f} | {row['members']:.0f} |")
    lines.append("")
    return lines


def _live_section(live: dict) -> list[str]:
    """Render the streaming-telemetry view of a runtime episode."""
    lines = ["## Live run", ""]
    lines.append(f"- {live['polls']} telemetry polls at "
                 f"{live['interval_ms']:.0f} ms cadence; wall clock at "
                 f"last poll {live['clock_ms']:.1f} ms")
    stream = live["stream"]
    dropped = stream["stream_dropped"]
    drop_note = (f", **{dropped} missed** (pump fell behind the ring)"
                 if dropped else ", 0 missed")
    where = f" → `{stream['path']}`" if stream.get("path") else ""
    lines.append(f"- streamed {stream['records']} trace records"
                 f"{drop_note}{where}")
    if live.get("halted"):
        lines.append(f"- **HALTED by watchdog**: {live['halted']}")
    lines.append("")

    phases = live.get("phases")
    if phases:
        lines += ["### Wall-clock phase costs", "",
                  "| phase | calls | total (s) | mean (ms) |",
                  "|---|---|---|---|"]
        for name, stats in phases.items():
            lines.append(f"| {name} | {int(stats['calls'])} "
                         f"| {stats['total_s']:.4f} "
                         f"| {stats['mean_ms']:.4f} |")
        lines.append("")

    lag = live.get("delivery_lag")
    if lag:
        lines += ["### Per-peer delivery lag", "",
                  "(lag behind each payload's first delivery)", "",
                  "| peer | payloads | mean lag (ms) | max lag (ms) |",
                  "|---|---|---|---|"]
        for peer_id, stats in lag.items():
            lines.append(f"| {peer_id} | {int(stats['payloads'])} "
                         f"| {stats['mean_ms']:.3f} "
                         f"| {stats['max_ms']:.3f} |")
        lines.append("")

    arq = live.get("arq")
    if arq is not None:
        lines += ["### ARQ reliability", "",
                  f"- retransmits: {arq['retransmits']}, "
                  f"expired: {arq['expired']}, duplicates suppressed: "
                  f"{arq['duplicates_suppressed']}",
                  f"- injected faults recovered: {arq['fault_dropped']} "
                  f"dropped, {arq['fault_duplicated']} duplicated"]
        attempts = arq.get("attempts")
        if attempts:
            lines += ["", "| attempts per delivery | frames |",
                      "|---|---|"]
            for label, count in attempts["buckets"]:
                if count:
                    lines.append(f"| {label} | {count} |")
            lines.append(f"| mean | {attempts['mean']:.2f} "
                         f"(over {attempts['count']}) |")
        lines.append("")

    return lines


def _series_detail(summary: dict) -> str:
    if summary["samples"] == 0:
        return "(empty)"
    if summary["kind"] == "counter":
        return (f"last={summary['last']:.0f} "
                f"Δ={summary['total_delta']:.0f} "
                f"maxΔ/interval={summary['max_interval_delta']:.0f}")
    if summary["kind"] == "gauge":
        return (f"last={summary['last']:.0f} "
                f"min={summary['min']:.0f} max={summary['max']:.0f}")
    return (f"n={summary['count']} mean={summary['mean']:.2f} "
            f"p50={summary['p50']:.2f} p90={summary['p90']:.2f} "
            f"p99={summary['p99']:.2f}")


def _cost_table(heading: str, costs: dict,
                key_header: str) -> list[str]:
    if not costs:
        return []
    lines = [f"## {heading}", "",
             f"| {key_header} | messages | delivered "
             "| mean latency (ms) | total latency (ms) |",
             "|---|---|---|---|---|"]
    for kind in sorted(costs):
        entry = costs[kind]
        lines.append(
            f"| {kind} | {entry['messages']} | {entry['delivered']} "
            f"| {entry['mean_latency_ms']:.3f} "
            f"| {entry['total_latency_ms']:.3f} |")
    lines.append("")
    return lines


def _episode_cost_table(costs: dict) -> list[str]:
    if not costs:
        return []
    lines = ["## Cost by protocol phase", "",
             "| phase | episodes | messages | mean critical path (ms) "
             "| max critical path (ms) |",
             "|---|---|---|---|---|"]
    for kind in sorted(costs):
        entry = costs[kind]
        lines.append(
            f"| {kind} | {entry['episodes']} | {entry['messages']} "
            f"| {entry['mean_critical_path_ms']:.3f} "
            f"| {entry['max_critical_path_ms']:.3f} |")
    lines.append("")
    return lines


def write_report(report: dict, directory: str | Path,
                 basename: str = "report") -> tuple[Path, Path]:
    """Write ``<basename>.md`` and ``<basename>.json`` under
    ``directory`` (created if missing); returns both paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    md_path = target / f"{basename}.md"
    json_path = target / f"{basename}.json"
    md_path.write_text(render_markdown(report), encoding="utf-8")
    json_path.write_text(
        json.dumps(report, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8")
    return md_path, json_path

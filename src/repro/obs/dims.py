"""Dimensional telemetry primitives: log-scale quantile sketches and
dense group-indexed metric columns.

The multigroup batch core (``repro.core.multigroup``) relaxes thousands
of groups per epoch; per-tenant reporting over that path cannot afford
one Python instrument per peer-group.  This module provides the two
representations the dimensional layer is built on:

* :class:`QuantileSketch` — a deterministic fixed-bin log-scale
  histogram over a :class:`SketchLayout`.  Its entire state is an
  ``int64`` count vector (no float accumulator), so merging two
  sketches is integer addition: commutative, associative, and
  bit-identical no matter how observations are split across
  ``core/parallel`` shards or ``experiments/parallel`` workers.
* Segmented column kernels — :func:`segment_log_histogram` and
  :func:`sketch_quantiles` operate on ``(n_groups, cells)`` ``int64``
  matrices (one sketch row per group) with vectorized numpy, so
  per-group delay percentiles cost O(groups · cells), never
  O(peer-groups) Python iterations.

A sketch quantile is the *upper edge* of the bin holding the requested
rank, which over-estimates the true order statistic by at most a factor
of ``layout.gamma`` for values inside ``[lo, hi)`` — the rank-error
bound pinned by the Hypothesis suite in ``tests/test_dims.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import TelemetryError

__all__ = [
    "DEFAULT_SKETCH_LAYOUT",
    "QuantileSketch",
    "SketchLayout",
    "segment_log_histogram",
    "sketch_quantiles",
]


@dataclass(frozen=True)
class SketchLayout:
    """Fixed geometric bin layout shared by every mergeable sketch.

    ``bins`` geometric buckets cover ``[lo, hi)``; one underflow cell
    (index 0) catches values at or below ``lo`` and one overflow cell
    (index ``bins + 1``) catches values at or above ``hi``, for
    ``cells == bins + 2`` total.  Two sketches merge only if their
    layouts are equal, which keeps the merged encoding unambiguous.
    """

    lo: float = 0.01
    hi: float = 1.0e7
    bins: int = 256

    def __post_init__(self) -> None:
        if not (0.0 < self.lo < self.hi):
            raise TelemetryError(
                f"sketch layout needs 0 < lo < hi, got [{self.lo}, {self.hi})")
        if self.bins < 1:
            raise TelemetryError(
                f"sketch layout needs at least one bin, got {self.bins}")

    @property
    def cells(self) -> int:
        """Total cell count: ``bins`` + underflow + overflow."""
        return self.bins + 2

    @property
    def gamma(self) -> float:
        """Geometric growth factor between consecutive bin edges."""
        return (self.hi / self.lo) ** (1.0 / self.bins)

    def bin_indices(self, values: np.ndarray) -> np.ndarray:
        """Vectorized cell index for each value (int64, same shape).

        NaNs land in the overflow cell (they compare false against
        ``<= lo``), keeping the total count conserved.
        """
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = np.floor(
                np.log(values / self.lo) / np.log(self.gamma)).astype(np.int64)
        idx = np.clip(raw + 1, 1, self.bins)
        idx = np.where(values <= self.lo, np.int64(0), idx)
        idx = np.where(values >= self.hi, np.int64(self.bins + 1), idx)
        return np.where(np.isnan(values), np.int64(self.bins + 1), idx)

    def upper_edges(self) -> np.ndarray:
        """Inclusive upper edge of every cell (overflow edge is +inf)."""
        edges = self.lo * self.gamma ** np.arange(self.bins + 1,
                                                  dtype=np.float64)
        edges[0] = self.lo
        return np.concatenate([edges, [np.inf]])


#: The canonical layout for millisecond delays: 256 bins over
#: [0.01 ms, 10^7 ms) give a ~8.4% relative rank-error bound.
DEFAULT_SKETCH_LAYOUT = SketchLayout()


class QuantileSketch:
    """A mergeable log-scale quantile sketch with integer-only state.

    The state is one ``int64`` vector of ``layout.cells`` counts; there
    is deliberately no floating-point sum, so every merge order and
    every shard grouping produces bit-identical state.
    """

    __slots__ = ("name", "layout", "_counts")

    def __init__(self, name: str,
                 layout: SketchLayout = DEFAULT_SKETCH_LAYOUT) -> None:
        self.name = name
        self.layout = layout
        self._counts = np.zeros(layout.cells, dtype=np.int64)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one sample."""
        self._counts[int(self.layout.bin_indices(
            np.asarray([value]))[0])] += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples with one vectorized pass."""
        values = np.asarray(list(values) if not isinstance(
            values, np.ndarray) else values, dtype=np.float64)
        if values.size == 0:
            return
        self._counts += np.bincount(
            self.layout.bin_indices(values.ravel()),
            minlength=self.layout.cells).astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of samples observed."""
        return int(self._counts.sum())

    def cell_counts(self) -> np.ndarray:
        """Copy of the per-cell counts (underflow first, overflow last)."""
        return self._counts.copy()

    def state_bytes(self) -> bytes:
        """Canonical byte encoding of the state (bit-identity tests)."""
        return self._counts.tobytes()

    def quantile(self, q: float) -> float:
        """Upper edge of the cell holding rank ``ceil(q * count)``.

        Returns 0.0 when empty and ``inf`` when the rank lands in the
        overflow cell.
        """
        if not (0.0 <= q <= 1.0):
            raise TelemetryError(f"quantile {q} outside [0, 1]")
        total = self._counts.sum()
        if total == 0:
            return 0.0
        rank = max(1, int(np.ceil(q * total)))
        cell = int(np.searchsorted(np.cumsum(self._counts), rank))
        return float(self.layout.upper_edges()[cell])

    def quantiles(self, qs: Sequence[float]) -> list[float]:
        """Batch :meth:`quantile`."""
        return [self.quantile(q) for q in qs]

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch | np.ndarray | Sequence[int]",
              ) -> None:
        """Fold another sketch (or its cell counts) into this one."""
        if isinstance(other, QuantileSketch):
            if other.layout != self.layout:
                raise TelemetryError(
                    f"sketch {self.name!r} cannot merge layout "
                    f"{other.layout} into {self.layout}")
            counts = other._counts
        else:
            counts = np.asarray(other, dtype=np.int64)
        if counts.shape != self._counts.shape:
            raise TelemetryError(
                f"sketch {self.name!r} cannot merge {counts.shape[0]} "
                f"cells into {self._counts.shape[0]}")
        self._counts += counts

    def reset(self) -> None:
        """Forget all samples."""
        self._counts[:] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuantileSketch({self.name!r}, count={self.count})"


# ----------------------------------------------------------------------
# Segmented (group-indexed) sketch columns for the SoA path
# ----------------------------------------------------------------------
def segment_log_histogram(
    group_ids: np.ndarray,
    values: np.ndarray,
    n_groups: int,
    layout: SketchLayout = DEFAULT_SKETCH_LAYOUT,
) -> np.ndarray:
    """Per-group sketch rows from flat ``(group_id, value)`` samples.

    One ``np.bincount`` over the flattened key ``group * cells + cell``
    produces the full ``(n_groups, cells)`` int64 matrix — the
    segmented reduction that keeps per-tenant delay accounting off the
    per-peer-group Python path.  Rows merge across shards by addition.
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    cells = layout.cells
    if group_ids.size == 0:
        return np.zeros((n_groups, cells), dtype=np.int64)
    flat = group_ids * cells + layout.bin_indices(values)
    return np.bincount(
        flat, minlength=n_groups * cells).astype(np.int64).reshape(
            n_groups, cells)


def sketch_quantiles(
    rows: np.ndarray,
    q: float,
    layout: SketchLayout = DEFAULT_SKETCH_LAYOUT,
) -> np.ndarray:
    """Vectorized per-row :meth:`QuantileSketch.quantile`.

    ``rows`` is a ``(n_groups, cells)`` count matrix; the result is one
    float per row (0.0 for empty rows, ``inf`` when the rank falls in
    the overflow cell).
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 2 or rows.shape[1] != layout.cells:
        raise TelemetryError(
            f"sketch rows must be (n, {layout.cells}), got {rows.shape}")
    totals = rows.sum(axis=1)
    ranks = np.maximum(1, np.ceil(q * totals).astype(np.int64))
    cum = np.cumsum(rows, axis=1)
    cells = np.minimum((cum < ranks[:, None]).sum(axis=1),
                       layout.cells - 1)
    out = layout.upper_edges()[cells]
    return np.where(totals == 0, 0.0, out)

"""Live telemetry pump: the observability stack on a running cluster.

Everything PR 1/4/5 built for the simulator — registry counters,
causal spans, topology snapshots, watchdog rules, reports — was driven
by a virtual clock that the experimenter single-steps.  A live
:class:`~repro.runtime.cluster.RuntimeCluster` has no such driver: time
passes on its own and telemetry must be *pumped*.  :class:`LiveTelemetry`
is that pump.  It wires one tracer/profiler/recorder trio to a cluster
through the clock seam (every component samples
``AsyncioTransport.now()`` exactly as it would sample
``Simulator.now``), then runs an asyncio task that periodically:

* samples every registry instrument into profiler time series,
* drains the tracer ring into an append-only ``trace.jsonl`` stream
  (falling behind is *counted* — ``stream_dropped`` — never silent),
* appends a registry snapshot line to ``snapshots.jsonl``,
* takes a topology snapshot and evaluates the attached watchdog rules
  online — a ``halt``-action rule cleanly stops the cluster.

The pump's outputs are the same artifacts a sim run produces (span
JSONL that :class:`~repro.obs.causality.SpanForest` reconstructs,
snapshots :mod:`repro.obs.diff` can gate on, watchdog incidents), so
the live half of the system reads exactly like the simulated half.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Iterable, Optional

from ..errors import TelemetryError, WatchdogHalt
from .profiler import Profiler
from .topology import TopologyRecorder
from .tracer import Tracer

#: Default pump cadence (seconds of wall-clock time between polls).
LIVE_INTERVAL_S = 0.05


class LiveTelemetry:
    """Streaming observability attached to one running cluster.

    Construction wires the components (and installs the tracer on the
    cluster's transport so frames start carrying spans); :meth:`start`
    — called with the cluster running — opens the output streams and
    spawns the pump task; :meth:`close` drains everything a final time
    and writes ``incidents.json``.  :meth:`poll` is the synchronous
    single-step the pump loops over; tests drive it directly for
    deterministic capture points.

    ``rules`` are watchdog rules evaluated online against every
    topology snapshot.  A rule with ``action="halt"`` raises
    :class:`~repro.errors.WatchdogHalt` out of :meth:`poll`; the pump
    task catches it, stops the cluster, and finalizes the streams —
    the operational kill-switch the sim's halting watchdogs promise.

    ``slo`` optionally attaches a :class:`~repro.obs.slo.SLOEngine`:
    its burn-rate rules are armed on the same watchdog engine (with
    ``slo_action`` selecting record/warn/halt), live per-tenant burn
    state joins :meth:`live_section` and ``incidents.json``, and the
    ops console can read attainment through ``cluster`` consumers.
    """

    def __init__(self, cluster, interval_s: float = LIVE_INTERVAL_S,
                 output_dir: Optional[str | Path] = None,
                 rules: Iterable = (),
                 tracer_capacity: int = 262144,
                 slo=None, slo_action: str = "record") -> None:
        if interval_s <= 0.0:
            raise TelemetryError("live telemetry interval must be positive")
        self.cluster = cluster
        self.interval_s = interval_s
        self.output_dir = Path(output_dir) if output_dir is not None \
            else None
        self.registry = cluster.registry
        # The clock seam: one bound method, sampled by every component
        # exactly as a sim-backed stack samples Simulator.now.
        self.clock = cluster.transport.now
        self.tracer = Tracer(capacity=tracer_capacity, spans=True,
                             registry=self.registry, clock=self.clock)
        cluster.transport.tracer = self.tracer
        interval_ms = interval_s * 1000.0
        self.profiler = Profiler(self.registry, interval_ms=interval_ms,
                                 clock=self.clock)
        self.recorder = TopologyRecorder(interval_ms=interval_ms,
                                         tracer=self.tracer,
                                         clock=self.clock)
        self.recorder.watch_cluster(cluster)
        self.recorder.watch_conservation(self.registry)
        for rule in rules:
            self.recorder.add_watchdog(rule)
        self.slo = slo
        if slo is not None:
            for rule in slo.rules(action=slo_action):
                self.recorder.add_watchdog(rule)
        self._task: Optional[asyncio.Task] = None
        self._trace_file = None
        self._snapshot_file = None
        self._polls = 0
        self._streamed = 0
        self._last_poll_ms = 0.0
        self._halted: Optional[str] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def halted(self) -> Optional[str]:
        """The halting watchdog's message, or None while healthy."""
        return self._halted

    @property
    def trace_path(self) -> Optional[Path]:
        return None if self.output_dir is None \
            else self.output_dir / "trace.jsonl"

    @property
    def snapshots_path(self) -> Optional[Path]:
        return None if self.output_dir is None \
            else self.output_dir / "snapshots.jsonl"

    @property
    def incidents_path(self) -> Optional[Path]:
        return None if self.output_dir is None \
            else self.output_dir / "incidents.json"

    def start(self) -> None:
        """Open the output streams and spawn the pump task.

        Call with the cluster started (the clock reads the transport's
        loop time) and a running event loop.
        """
        if self._task is not None:
            raise TelemetryError("live telemetry already started")
        if self.output_dir is not None:
            self.output_dir.mkdir(parents=True, exist_ok=True)
            self._trace_file = self.trace_path.open(
                "w", encoding="utf-8", newline="")
            self._snapshot_file = self.snapshots_path.open(
                "w", encoding="utf-8", newline="")
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            try:
                self.poll()
            except WatchdogHalt as halt:
                # The kill-switch: a halt-action rule fired online.
                # Stop the cluster cleanly, finalize the streams, and
                # leave the alert trail in place for the post-mortem.
                self._halted = str(halt)
                await self.cluster.stop()
                self._finalize()
                return

    def poll(self) -> float:
        """One pump step at the current wall-clock time; returns it.

        Order matters: the trace stream is flushed *before* watchdogs
        evaluate, so a halt leaves everything recorded up to the
        incident on disk.  Raises :class:`~repro.errors.WatchdogHalt`
        when a halt-action rule fires.
        """
        at_ms = float(self.clock())
        self._polls += 1
        self._last_poll_ms = at_ms
        self.profiler.sample(at_ms)
        self._flush()
        self.recorder.snapshot(at_ms, kind="cadence")
        return at_ms

    def _flush(self) -> None:
        """Drain the tracer ring and append one registry snapshot."""
        fresh, _missed = self.tracer.drain_records()
        self._streamed += len(fresh)
        if self._trace_file is not None:
            for rec in fresh:
                self._trace_file.write(rec.to_json() + "\n")
            self._trace_file.flush()
        if self._snapshot_file is not None:
            line = {"at_ms": self._last_poll_ms,
                    "counters": self.registry.snapshot()}
            self._snapshot_file.write(
                json.dumps(line, sort_keys=True,
                           separators=(",", ":")) + "\n")
            self._snapshot_file.flush()

    async def close(self) -> None:
        """Stop the pump, take a final sample, finalize the streams."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if not self._closed and self._halted is None:
            try:
                self.poll()
            except WatchdogHalt as halt:
                self._halted = str(halt)
        self._finalize()

    def _finalize(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._flush()
        if self._trace_file is not None:
            # Trailing meta line: parsers skip it, operators read the
            # accounting (including stream_dropped) from the file alone.
            self._trace_file.write(
                json.dumps({"meta": self.tracer.export_meta()},
                           sort_keys=True, separators=(",", ":")) + "\n")
            self._trace_file.close()
            self._trace_file = None
        if self._snapshot_file is not None:
            self._snapshot_file.close()
            self._snapshot_file = None
        if self.output_dir is not None:
            engine = self.recorder.watchdogs
            incidents = {"halted": self._halted}
            if engine is not None:
                incidents.update(engine.summary())
            if self.slo is not None:
                incidents["slo"] = self.slo.summary()
            self.incidents_path.write_text(
                json.dumps(incidents, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def phase(self, name: str):
        """Wall-clock phase timer (delegates to the profiler)."""
        return self.profiler.phase(name)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def live_section(self) -> dict[str, object]:
        """The report's "Live run" section (see
        :func:`repro.obs.report.build_report`)."""
        section: dict[str, object] = {
            "polls": self._polls,
            "interval_ms": self.interval_s * 1000.0,
            "clock_ms": self._last_poll_ms,
            "halted": self._halted,
            "stream": {
                "records": self._streamed,
                "stream_dropped": self.tracer.stream_dropped,
                "path": (str(self.trace_path)
                         if self.trace_path is not None else None),
            },
            "phases": self.profiler.phase_stats(),
            "delivery_lag": self._delivery_lag(),
            "arq": self._arq_section(),
        }
        if self.slo is not None:
            section["slo"] = self.slo.summary()
        return section

    def _delivery_lag(self) -> dict[int, dict[str, float]]:
        """Per-peer payload delivery lag behind the first delivery.

        For each published payload the earliest recorded delivery is
        the reference; every peer's lag is its own delivery time minus
        that reference, aggregated per peer.
        """
        per_peer: dict[int, list[float]] = {}
        for records in self.cluster.delivery_log().values():
            if not records:
                continue
            first_ms = min(records.values())
            for peer_id, at_ms in records.items():
                per_peer.setdefault(peer_id, []).append(at_ms - first_ms)
        return {
            peer_id: {
                "payloads": float(len(lags)),
                "mean_ms": sum(lags) / len(lags),
                "max_ms": max(lags),
            }
            for peer_id, lags in sorted(per_peer.items())}

    def _arq_section(self) -> dict[str, object]:
        """Retry/duplicate counters plus the attempts histogram."""
        def counter(name: str) -> int:
            instrument = self.registry.get(name)
            return 0 if instrument is None else int(instrument.value)

        out: dict[str, object] = {
            "retransmits": counter("runtime.retransmits"),
            "expired": counter("runtime.expired"),
            "duplicates_suppressed": counter(
                "runtime.duplicates_suppressed"),
            "fault_dropped": counter("runtime.fault_dropped"),
            "fault_duplicated": counter("runtime.fault_duplicated"),
        }
        histogram = self.registry.get("runtime.arq.attempts")
        if histogram is not None and getattr(histogram, "count", 0):
            bounds = [f"<= {bound:g}" for bound in histogram.bounds]
            bounds.append("overflow")
            out["attempts"] = {
                "count": int(histogram.count),
                "mean": float(histogram.mean),
                "buckets": [
                    [label, int(count)]
                    for label, count in zip(
                        bounds, histogram.bucket_counts())],
            }
        return out

"""Zero-dependency observability layer: instruments, traces, causality.

Four pieces:

* :mod:`.registry` — named counters, gauges and fixed-bucket histograms
  behind a :class:`Registry`, plus a process-wide default registry that
  the procedural protocol paths fall back to (disabled — and therefore
  free — unless :func:`enable_telemetry` installs an enabled one);
* :mod:`.tracer` — a :class:`Tracer` ring buffer of structured trace
  records with JSON-lines export, a running :meth:`~Tracer.trace_digest`
  hash for determinism regression tests, and deterministic
  :class:`SpanContext` minting for causal episode tracing (off by
  default, bit-transparent to historical digests);
* :mod:`.causality` — :class:`SpanForest` reconstruction of span trees
  from trace streams, with critical-path latency, fan-out/depth stats
  and per-message-kind cost attribution;
* :mod:`.profiler` — a :class:`Profiler` sampling the registry on a
  fixed virtual-time cadence into typed time-series, plus wall-clock
  :func:`phase_timer` helpers for host-side hot paths.

Every paper-figure metric maps onto a named instrument; the table lives
in the README's Observability section.  :mod:`.report` assembles all of
the above into per-run experiment reports.
"""

from .causality import Span, SpanForest, SpanTree, TreeStats
from .profiler import (
    QUANTILES,
    HistogramSample,
    Profiler,
    TimeSeries,
    disable_profiling,
    enable_profiling,
    get_default_profiler,
    histogram_quantile,
    phase_timer,
    set_default_profiler,
)
from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    disable_telemetry,
    enable_telemetry,
    get_default_registry,
    set_default_registry,
)
from .tracer import (
    KIND_CRASH,
    KIND_DEAD_LETTER,
    KIND_DELIVER,
    KIND_FAULT_DELAY,
    KIND_FAULT_DROP,
    KIND_FAULT_DUPLICATE,
    KIND_FAULT_REORDER,
    KIND_FIRE,
    KIND_LOST,
    KIND_PARTITION_DROP,
    KIND_PARTITION_HEAL,
    KIND_PARTITION_START,
    KIND_RESTART,
    KIND_SCHEDULE,
    KIND_SEND,
    KIND_SPAN,
    SpanContext,
    TraceRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_default_tracer,
    set_default_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSample",
    "Profiler",
    "QUANTILES",
    "Registry",
    "Span",
    "SpanContext",
    "SpanForest",
    "SpanTree",
    "TimeSeries",
    "TreeStats",
    "disable_profiling",
    "disable_telemetry",
    "disable_tracing",
    "enable_profiling",
    "enable_telemetry",
    "enable_tracing",
    "get_default_profiler",
    "get_default_registry",
    "get_default_tracer",
    "histogram_quantile",
    "phase_timer",
    "set_default_profiler",
    "set_default_registry",
    "set_default_tracer",
    "KIND_CRASH",
    "KIND_DEAD_LETTER",
    "KIND_DELIVER",
    "KIND_FAULT_DELAY",
    "KIND_FAULT_DROP",
    "KIND_FAULT_DUPLICATE",
    "KIND_FAULT_REORDER",
    "KIND_FIRE",
    "KIND_LOST",
    "KIND_PARTITION_DROP",
    "KIND_PARTITION_HEAL",
    "KIND_PARTITION_START",
    "KIND_RESTART",
    "KIND_SCHEDULE",
    "KIND_SEND",
    "KIND_SPAN",
    "TraceRecord",
    "Tracer",
]

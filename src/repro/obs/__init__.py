"""Zero-dependency observability layer: instruments and trace capture.

Two pieces:

* :mod:`.registry` — named counters, gauges and fixed-bucket histograms
  behind a :class:`Registry`, plus a process-wide default registry that
  the procedural protocol paths fall back to (disabled — and therefore
  free — unless :func:`enable_telemetry` installs an enabled one);
* :mod:`.tracer` — a :class:`Tracer` ring buffer of structured trace
  records with JSON-lines export and a running :meth:`~Tracer.
  trace_digest` hash for determinism regression tests.

Every paper-figure metric maps onto a named instrument; the table lives
in the README's Observability section.
"""

from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    disable_telemetry,
    enable_telemetry,
    get_default_registry,
    set_default_registry,
)
from .tracer import (
    KIND_CRASH,
    KIND_DEAD_LETTER,
    KIND_DELIVER,
    KIND_FAULT_DELAY,
    KIND_FAULT_DROP,
    KIND_FAULT_DUPLICATE,
    KIND_FAULT_REORDER,
    KIND_FIRE,
    KIND_LOST,
    KIND_PARTITION_DROP,
    KIND_PARTITION_HEAL,
    KIND_PARTITION_START,
    KIND_RESTART,
    KIND_SCHEDULE,
    KIND_SEND,
    TraceRecord,
    Tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "disable_telemetry",
    "enable_telemetry",
    "get_default_registry",
    "set_default_registry",
    "KIND_CRASH",
    "KIND_DEAD_LETTER",
    "KIND_DELIVER",
    "KIND_FAULT_DELAY",
    "KIND_FAULT_DROP",
    "KIND_FAULT_DUPLICATE",
    "KIND_FAULT_REORDER",
    "KIND_FIRE",
    "KIND_LOST",
    "KIND_PARTITION_DROP",
    "KIND_PARTITION_HEAL",
    "KIND_PARTITION_START",
    "KIND_RESTART",
    "KIND_SCHEDULE",
    "KIND_SEND",
    "TraceRecord",
    "Tracer",
]

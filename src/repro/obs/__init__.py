"""Zero-dependency observability layer: instruments, traces, causality.

Four pieces:

* :mod:`.registry` — named counters, gauges and fixed-bucket histograms
  behind a :class:`Registry`, plus a process-wide default registry that
  the procedural protocol paths fall back to (disabled — and therefore
  free — unless :func:`enable_telemetry` installs an enabled one);
* :mod:`.tracer` — a :class:`Tracer` ring buffer of structured trace
  records with JSON-lines export, a running :meth:`~Tracer.trace_digest`
  hash for determinism regression tests, and deterministic
  :class:`SpanContext` minting for causal episode tracing (off by
  default, bit-transparent to historical digests);
* :mod:`.causality` — :class:`SpanForest` reconstruction of span trees
  from trace streams, with critical-path latency, fan-out/depth stats
  and per-message-kind cost attribution;
* :mod:`.profiler` — a :class:`Profiler` sampling the registry on a
  fixed virtual-time cadence into typed time-series, plus wall-clock
  :func:`phase_timer` helpers for host-side hot paths;
* :mod:`.topology` — a :class:`TopologyRecorder` capturing delta-encoded
  structural snapshots of the overlay graph and per-group spanning trees
  on a virtual-time cadence (degree histogram + power-law fit, diameter,
  components, tree depth/stress/overload), with DOT/JSON export;
* :mod:`.watchdog` — a :class:`WatchdogEngine` of SLO-style rules
  (partition, metric spikes, orphaned members, conservation-gap growth,
  heartbeat staleness) evaluated against every topology snapshot;
* :mod:`.diff` — structural + metric diffing between snapshots,
  checkpoints and exported run artifacts, gating cross-run drift in CI;
* :mod:`.live` — a :class:`LiveTelemetry` pump running the same stack
  against a live asyncio cluster through the clock seam: streaming
  trace/snapshot JSONL, online watchdogs (halt stops the cluster) and
  the report's "Live run" section;
* :mod:`.dims` — dimensional telemetry primitives: the deterministic
  log-scale :class:`QuantileSketch` (integer-only state, bit-identical
  merges) and the segmented group-indexed column kernels behind
  per-tenant percentiles at thousand-group scale;
* :mod:`.slo` — declarative per-tenant objectives (:class:`SLOSpec`),
  per-tenant :class:`AttainmentTable` scoreboards with canonical byte
  encodings, and :class:`SLOBurnRule` error-budget burn watchdogs
  riding the record/warn/halt machinery.

Every paper-figure metric maps onto a named instrument; the table lives
in the README's Observability section.  :mod:`.report` assembles all of
the above into per-run experiment reports.
"""

from .causality import Span, SpanForest, SpanTree, TreeStats
from .dims import (
    DEFAULT_SKETCH_LAYOUT,
    QuantileSketch,
    SketchLayout,
    segment_log_histogram,
    sketch_quantiles,
)
from .live import LIVE_INTERVAL_S, LiveTelemetry
from .slo import AttainmentTable, SLOBurnRule, SLOEngine, SLOSpec
from .diff import (
    EpochDiff,
    TopologyDiff,
    diff_artifacts,
    diff_recorders,
    diff_snapshots,
    reconstruct_epochs,
)
from .profiler import (
    QUANTILES,
    HistogramSample,
    Profiler,
    TimeSeries,
    disable_profiling,
    enable_profiling,
    get_default_profiler,
    histogram_quantile,
    phase_timer,
    set_default_profiler,
)
from .registry import (
    DEFAULT_BUCKETS,
    FAMILY_KINDS,
    NULL_REGISTRY,
    OVERFLOW_SERIES,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    Registry,
    disable_telemetry,
    enable_telemetry,
    get_default_registry,
    set_default_registry,
)
from .topology import (
    TOPOLOGY_INTERVAL_MS,
    GraphDelta,
    TopologyRecorder,
    TopologySnapshot,
    TreeDelta,
    disable_topology,
    enable_topology,
    get_default_topology_recorder,
    pseudo_diameter,
    set_default_topology_recorder,
    tree_cost_metrics,
)
from .tracer import (
    KIND_CRASH,
    KIND_DEAD_LETTER,
    KIND_DELIVER,
    KIND_FAULT_DELAY,
    KIND_FAULT_DROP,
    KIND_FAULT_DUPLICATE,
    KIND_FAULT_REORDER,
    KIND_FIRE,
    KIND_LOST,
    KIND_PARTITION_DROP,
    KIND_PARTITION_HEAL,
    KIND_PARTITION_START,
    KIND_RESTART,
    KIND_SCHEDULE,
    KIND_SEND,
    KIND_SPAN,
    KIND_WATCHDOG,
    Clock,
    SpanContext,
    TraceRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_default_tracer,
    set_default_tracer,
)
from .watchdog import (
    ACTIONS,
    Alert,
    ConservationGapGrowth,
    HeartbeatStaleness,
    MetricSpike,
    OrphanedMembers,
    OverlayPartition,
    WatchdogEngine,
    WatchdogRule,
    default_watchdogs,
    node_stress_spike,
    tree_depth_spike,
)

__all__ = [
    "ACTIONS",
    "Alert",
    "AttainmentTable",
    "Clock",
    "ConservationGapGrowth",
    "DEFAULT_BUCKETS",
    "DEFAULT_SKETCH_LAYOUT",
    "EpochDiff",
    "FAMILY_KINDS",
    "GraphDelta",
    "HeartbeatStaleness",
    "MetricFamily",
    "MetricSpike",
    "NULL_REGISTRY",
    "OVERFLOW_SERIES",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSample",
    "LIVE_INTERVAL_S",
    "LiveTelemetry",
    "OrphanedMembers",
    "OverlayPartition",
    "Profiler",
    "QUANTILES",
    "QuantileSketch",
    "Registry",
    "SLOBurnRule",
    "SLOEngine",
    "SLOSpec",
    "SketchLayout",
    "Span",
    "SpanContext",
    "SpanForest",
    "SpanTree",
    "TOPOLOGY_INTERVAL_MS",
    "TimeSeries",
    "TopologyDiff",
    "TopologyRecorder",
    "TopologySnapshot",
    "TreeDelta",
    "TreeStats",
    "WatchdogEngine",
    "WatchdogRule",
    "default_watchdogs",
    "diff_artifacts",
    "diff_recorders",
    "diff_snapshots",
    "disable_profiling",
    "disable_telemetry",
    "disable_topology",
    "disable_tracing",
    "enable_profiling",
    "enable_telemetry",
    "enable_topology",
    "enable_tracing",
    "get_default_profiler",
    "get_default_registry",
    "get_default_topology_recorder",
    "get_default_tracer",
    "histogram_quantile",
    "node_stress_spike",
    "phase_timer",
    "pseudo_diameter",
    "reconstruct_epochs",
    "segment_log_histogram",
    "set_default_profiler",
    "set_default_registry",
    "set_default_topology_recorder",
    "set_default_tracer",
    "sketch_quantiles",
    "tree_cost_metrics",
    "tree_depth_spike",
    "KIND_CRASH",
    "KIND_DEAD_LETTER",
    "KIND_DELIVER",
    "KIND_FAULT_DELAY",
    "KIND_FAULT_DROP",
    "KIND_FAULT_DUPLICATE",
    "KIND_FAULT_REORDER",
    "KIND_FIRE",
    "KIND_LOST",
    "KIND_PARTITION_DROP",
    "KIND_PARTITION_HEAL",
    "KIND_PARTITION_START",
    "KIND_RESTART",
    "KIND_SCHEDULE",
    "KIND_SEND",
    "KIND_SPAN",
    "KIND_WATCHDOG",
    "TraceRecord",
    "Tracer",
]

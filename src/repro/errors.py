"""Exception hierarchy for the GroupCast reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration value is out of its documented range."""


class TopologyError(ReproError):
    """The underlay topology is malformed or a lookup failed."""


class RoutingError(TopologyError):
    """No route exists between two attachment points."""


class OverlayError(ReproError):
    """An overlay operation failed (unknown peer, duplicate link, ...)."""


class PeerNotFoundError(OverlayError):
    """The requested peer identifier is not present in the overlay."""


class BootstrapError(OverlayError):
    """A joining peer could not obtain bootstrap candidates."""


class GroupError(ReproError):
    """A group-communication operation failed."""


class RendezvousError(GroupError):
    """No suitable rendezvous point could be located."""


class SubscriptionError(GroupError):
    """A peer failed to subscribe to a communication group."""


class TreeError(GroupError):
    """The spanning tree is malformed (cycle, disconnection, ...)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TelemetryError(ReproError):
    """An observability instrument was misused (name clash, bad bucket)."""


class FaultPlanError(ReproError):
    """A fault-injection schedule is malformed (bad window, overlap, ...)."""


class InvariantViolation(ReproError):
    """A protocol invariant check failed during a simulation run."""


class WatchdogHalt(ReproError):
    """A watchdog rule with the ``halt`` action fired during a run."""


class TransportError(ReproError):
    """A runtime transport operation failed (unknown peer, closed, ...)."""


class FramingError(TransportError):
    """A wire frame could not be encoded or decoded."""


class DeliveryError(TransportError):
    """A reliable send exhausted its retransmit budget without an ack."""

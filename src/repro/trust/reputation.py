"""Decentralized reputation ledger (TrustGuard-style).

Each peer scores the peers it has directly interacted with: a successful
payload delivery from an upstream raises the score, a missed delivery
lowers it, via an exponentially weighted moving average.  Selection
decisions can read either the observer's *local* view (strictly
decentralized) or the *aggregate* view over all observers (standing in
for TrustGuard's gossip-propagated reputation with PID-controlled
smoothing — the steady-state value is what matters to the middleware).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TrustConfig:
    """Reputation dynamics."""

    initial_score: float = 0.5
    ewma_alpha: float = 0.3
    floor: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_score <= 1.0:
            raise ConfigurationError("initial_score must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.floor < 1.0:
            raise ConfigurationError("floor must be in [0, 1)")


class ReputationLedger:
    """Per-observer trust scores with an aggregate view."""

    def __init__(self, config: TrustConfig | None = None) -> None:
        self.config = config or TrustConfig()
        self._scores: dict[tuple[int, int], float] = {}
        self._observers: dict[int, set[int]] = defaultdict(set)

    def score(self, observer: int, subject: int) -> float:
        """``observer``'s local trust in ``subject``."""
        return self._scores.get((observer, subject),
                                self.config.initial_score)

    def record(self, observer: int, subject: int, success: bool) -> None:
        """Fold one interaction outcome into the observer's score."""
        current = self.score(observer, subject)
        target = 1.0 if success else 0.0
        alpha = self.config.ewma_alpha
        updated = (1.0 - alpha) * current + alpha * target
        self._scores[(observer, subject)] = max(updated,
                                                self.config.floor)
        self._observers[subject].add(observer)

    def aggregate_score(self, subject: int) -> float:
        """Mean trust in ``subject`` over every peer that observed it."""
        observers = self._observers.get(subject)
        if not observers:
            return self.config.initial_score
        return sum(self.score(obs, subject)
                   for obs in observers) / len(observers)

    def observation_count(self, subject: int) -> int:
        """How many distinct peers have scored ``subject``."""
        return len(self._observers.get(subject, ()))

    def trust_fn(self, use_aggregate: bool = True):
        """A ``(observer, subject) -> weight`` hook for SSA forwarding."""
        if use_aggregate:
            return lambda observer, subject: self.aggregate_score(subject)
        return self.score

    def quarantine_fn(self, threshold: float = 0.25,
                      min_observations: int = 2):
        """A trust hook that hard-excludes suspected peers.

        Returns a ``(observer, subject) -> weight`` function giving zero
        weight to peers whose aggregate trust fell below ``threshold``
        (with at least ``min_observations`` observers) and the aggregate
        score otherwise — the quarantine policy of a TrustGuard-style
        deployment.
        """
        def weight(observer: int, subject: int) -> float:
            if (self.observation_count(subject) >= min_observations
                    and self.aggregate_score(subject) < threshold):
                return 0.0
            return self.aggregate_score(subject)

        return weight

    def suspects(self, threshold: float = 0.25,
                 min_observations: int = 2) -> set[int]:
        """Peers whose aggregate trust fell below ``threshold``."""
        return {
            subject for subject in self._observers
            if self.observation_count(subject) >= min_observations
            and self.aggregate_score(subject) < threshold
        }

"""Payload dissemination under free-riding forwarders.

A *free-rider* accepts tree children (it looks like a normal forwarder)
but drops payloads with some probability.  This module floods a payload
through a spanning tree in the presence of such peers, records who did
and did not receive it, and feeds the evidence into a
:class:`~repro.trust.reputation.ReputationLedger`: every tree child
scores its parent by whether the payload arrived.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Collection, Mapping

from ..errors import GroupError
from ..groupcast.spanning_tree import SpanningTree
from ..network.underlay import UnderlayNetwork
from ..sim.random import RandomSource
from .reputation import ReputationLedger


@dataclass(frozen=True)
class LossyDisseminationReport:
    """Delivery outcome of one payload under free-riding."""

    source: int
    member_delays_ms: Mapping[int, float]
    starved_members: frozenset[int]
    drops: int

    @property
    def delivery_ratio(self) -> float:
        """Fraction of (non-source) members that received the payload."""
        total = len(self.member_delays_ms) + len(self.starved_members)
        if total == 0:
            return 1.0
        return len(self.member_delays_ms) / total


def disseminate_with_failures(
    tree: SpanningTree,
    source: int,
    underlay: UnderlayNetwork,
    rng: RandomSource,
    free_riders: Collection[int] = (),
    drop_probability: float = 1.0,
    ledger: ReputationLedger | None = None,
) -> LossyDisseminationReport:
    """Flood one payload; free-riders drop instead of forwarding.

    A free-rider still *receives* (its upstream did its job); it fails to
    forward onward with ``drop_probability`` per downstream link.  When a
    ``ledger`` is given, every tree neighbor that expected the payload
    scores the peer it expected it from.
    """
    if source not in tree:
        raise GroupError(f"source {source} is not on the spanning tree")
    if not 0.0 <= drop_probability <= 1.0:
        raise GroupError("drop_probability must be a probability")
    riders = set(free_riders)
    adjacency = tree.tree_adjacency()
    delays: dict[int, float] = {source: 0.0}
    drops = 0

    queue = deque([source])
    while queue:
        node = queue.popleft()
        # Draw the drop decisions first (same rng order as the scalar
        # loop), then resolve all surviving hops in one vectorized query.
        delivered: list[int] = []
        for neighbor in adjacency[node]:
            if neighbor in delays:
                continue
            if node in riders and rng.random() < drop_probability:
                drops += 1
                if ledger is not None:
                    ledger.record(neighbor, node, success=False)
                continue
            delivered.append(neighbor)
        if not delivered:
            continue
        hop_delays = underlay.peer_distances_ms(node, delivered)
        for neighbor, hop_delay in zip(delivered, hop_delays):
            delays[neighbor] = delays[node] + float(hop_delay)
            if ledger is not None:
                ledger.record(neighbor, node, success=True)
            queue.append(neighbor)

    member_delays = {member: delays[member]
                     for member in tree.members
                     if member != source and member in delays}
    starved = frozenset(member for member in tree.members
                        if member != source and member not in delays)
    return LossyDisseminationReport(
        source=source,
        member_delays_ms=member_delays,
        starved_members=starved,
        drops=drops,
    )

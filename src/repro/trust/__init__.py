"""Node-level trust for utility-aware forwarding.

The paper's conclusion plans to augment GroupCast "with mechanisms such
as ... TrustGuard [27] to enhance ... its node-level trust".  This
package provides that augmentation in GroupCast's own idiom — trust is
just a third signal multiplied into the selection preference:

* :mod:`.reputation` — a decentralized reputation ledger: every peer
  keeps EWMA scores of the peers it interacted with, based on observed
  payload delivery, and an aggregate (gossip-style) view is available
  for selection decisions;
* :mod:`.dissemination` — payload flooding in the presence of
  *free-riders* that accept children but drop payloads, feeding
  observations into the ledger;
* the trust hook itself lives in
  :func:`repro.groupcast.advertisement.propagate_advertisement`
  (``trust_fn``): SSA forwarding probability is scaled by the sender's
  trust in each neighbor, so low-trust peers fall off advertisement
  paths and, with them, out of future spanning trees.
"""

from .reputation import ReputationLedger, TrustConfig
from .dissemination import LossyDisseminationReport, disseminate_with_failures

__all__ = [
    "ReputationLedger",
    "TrustConfig",
    "LossyDisseminationReport",
    "disseminate_with_failures",
]

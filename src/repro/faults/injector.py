"""Deterministic fault injection over the message transport.

A :class:`FaultInjector` interprets a :class:`~repro.faults.plan.
FaultPlan` against a live :class:`~repro.sim.messaging.MessageNetwork`:
it intercepts every ``send`` (via the transport's ``fault_injector``
hook), drops/duplicates/delays/reorders messages inside the plan's
windows, severs messages across an active partition, and fires the
plan's crash/restart events on the simulator.

Three properties make the harness regression-grade:

* **Determinism** — all randomness comes from the injector's *own*
  :class:`~repro.sim.random.RandomSource` stream, so attaching an
  injector never perturbs protocol RNG streams, and the same seed
  always yields the same fault realization.
* **Transparency at zero** — with an empty plan the injector draws no
  random numbers and emits no trace records, so a run with a zero-fault
  injector attached is *bit-identical* (same ``trace_digest``) to a run
  without one.
* **Accountability** — every injected fault increments a ``faults.*``
  registry counter and, when a tracer is attached, lands in the trace
  stream, so tests can assert exactly what the schedule did.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import FaultPlanError
from ..obs.profiler import phase_timer
from ..obs.registry import Registry
from ..obs.tracer import (
    KIND_CRASH,
    KIND_FAULT_DELAY,
    KIND_FAULT_DROP,
    KIND_FAULT_DUPLICATE,
    KIND_FAULT_REORDER,
    KIND_PARTITION_DROP,
    KIND_PARTITION_HEAL,
    KIND_PARTITION_START,
    KIND_RESTART,
    Tracer,
)
from ..overlay.messages import MessageKind
from ..sim.engine import Simulator
from ..sim.random import RandomSource
from .plan import FaultPlan, PartitionWindow, apply_partition, heal_partition


class FaultInjector:
    """Executes one :class:`FaultPlan` against a message transport."""

    def __init__(
        self,
        plan: FaultPlan,
        rng: RandomSource,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.plan = plan
        self.rng = rng
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        self.network = None
        self.simulator: Simulator | None = None
        self._overlay = None
        self._severed_links: list[tuple[int, int]] = []
        self._crashed: set[int] = set()
        self._c_dropped = self.registry.counter("faults.dropped")
        self._c_duplicated = self.registry.counter("faults.duplicated")
        self._c_delayed = self.registry.counter("faults.delayed")
        self._c_reordered = self.registry.counter("faults.reordered")
        self._c_partition_dropped = self.registry.counter(
            "faults.partition_dropped")
        self._c_partitions = self.registry.counter("faults.partitions")
        self._c_heals = self.registry.counter("faults.partition_heals")
        self._c_crashes = self.registry.counter("faults.crashes")
        self._c_restarts = self.registry.counter("faults.restarts")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, network) -> "FaultInjector":
        """Install this injector on a :class:`MessageNetwork`."""
        if network.fault_injector is not None:
            raise FaultPlanError("the network already has a fault injector")
        network.fault_injector = self
        self.network = network
        self.simulator = network.simulator
        return self

    def detach(self) -> None:
        """Remove this injector from its network."""
        if self.network is not None:
            self.network.fault_injector = None
        self.network = None

    def arm(
        self,
        simulator: Simulator | None = None,
        overlay=None,
        on_crash: Callable[[int], None] | None = None,
        on_restart: Callable[[int], None] | None = None,
    ) -> None:
        """Schedule the plan's timed events on the simulator.

        Partition windows sever/heal messages automatically; when
        ``overlay`` is given the corresponding overlay links are removed
        for the window's duration too, so hop-by-hop searches (tree
        repair, maintenance) observe the partition as well.  Crash and
        restart events call back into the harness (``on_crash`` /
        ``on_restart``), which owns the session/overlay side effects.
        """
        simulator = simulator or self.simulator
        if simulator is None:
            raise FaultPlanError("arm() needs a simulator (attach first)")
        self.simulator = simulator
        self._overlay = overlay
        now = simulator.now
        for partition in self.plan.partitions:
            if partition.end_ms <= now:
                continue
            simulator.schedule_at(
                max(partition.start_ms, now),
                lambda p=partition: self._partition_start(p))
            simulator.schedule_at(
                partition.end_ms,
                lambda p=partition: self._partition_heal(p))
        for crash in self.plan.crashes:
            if crash.at_ms >= now:
                simulator.schedule_at(
                    crash.at_ms,
                    lambda c=crash: self._crash(c.peer_id, on_crash))
            if crash.restart_at_ms is not None \
                    and crash.restart_at_ms >= now:
                simulator.schedule_at(
                    crash.restart_at_ms,
                    lambda c=crash: self._restart(c.peer_id, on_restart))

    # ------------------------------------------------------------------
    # Timed events
    # ------------------------------------------------------------------
    def _partition_start(self, partition: PartitionWindow) -> None:
        self._c_partitions.inc()
        if self._overlay is not None:
            self._severed_links.extend(
                apply_partition(self._overlay, partition.components))
        if self.tracer is not None:
            self.tracer.record(
                self.simulator.now, KIND_PARTITION_START,
                detail=f"components={len(partition.components)}")

    def _partition_heal(self, partition: PartitionWindow) -> None:
        self._c_heals.inc()
        restored = 0
        if self._overlay is not None and self._severed_links:
            restored = heal_partition(self._overlay, self._severed_links)
            self._severed_links.clear()
        if self.tracer is not None:
            self.tracer.record(self.simulator.now, KIND_PARTITION_HEAL,
                               detail=f"restored={restored}")

    def _crash(self, peer_id: int,
               on_crash: Callable[[int], None] | None) -> None:
        if peer_id in self._crashed:
            return
        self._crashed.add(peer_id)
        self._c_crashes.inc()
        if self.tracer is not None:
            self.tracer.record(self.simulator.now, KIND_CRASH, a=peer_id)
        if on_crash is not None:
            on_crash(peer_id)

    def _restart(self, peer_id: int,
                 on_restart: Callable[[int], None] | None) -> None:
        if peer_id not in self._crashed:
            return
        self._crashed.discard(peer_id)
        self._c_restarts.inc()
        if self.tracer is not None:
            self.tracer.record(self.simulator.now, KIND_RESTART, a=peer_id)
        if on_restart is not None:
            on_restart(peer_id)

    @property
    def crashed_peers(self) -> frozenset[int]:
        """Peers currently down because of a plan crash event."""
        return frozenset(self._crashed)

    def faults_injected(self) -> int:
        """Total message-level faults injected so far."""
        return (self._c_dropped.value + self._c_duplicated.value
                + self._c_delayed.value + self._c_reordered.value
                + self._c_partition_dropped.value)

    # ------------------------------------------------------------------
    # Transport hook
    # ------------------------------------------------------------------
    def on_send(self, network, sender: int, recipient: int, payload: object,
                kind: MessageKind | None, latency_ms: float,
                span=None) -> float | None:
        """Apply the plan to one message about to be scheduled.

        Returns the (possibly inflated) transit latency, or None when
        the message must be dropped.  Called by
        :meth:`MessageNetwork.send` after its own loss process, so
        ambient losses and injected faults are accounted separately.
        ``span`` is the message's causal span (None unless span tracing
        is on); fault records carry it so a span tree shows *which*
        message a window dropped, duplicated or delayed.
        """
        plan = self.plan
        if plan.is_zero:
            return latency_ms
        with phase_timer("faults.on_send"):
            return self._apply(network, sender, recipient, payload, kind,
                               latency_ms, span)

    def _apply(self, network, sender: int, recipient: int, payload: object,
               kind: MessageKind | None, latency_ms: float,
               span) -> float | None:
        plan = self.plan
        now = network.simulator.now
        detail = kind.value if kind is not None else ""
        partition = plan.partition_at(now)
        if partition is not None and partition.severed(sender, recipient):
            self._c_partition_dropped.inc()
            if self.tracer is not None:
                self.tracer.record(now, KIND_PARTITION_DROP,
                                   a=sender, b=recipient, detail=detail,
                                   span=span)
            return None
        for window in plan.active_windows(now, sender, recipient):
            if self.rng.random() >= window.probability:
                continue
            if window.kind == "drop":
                self._c_dropped.inc()
                if self.tracer is not None:
                    self.tracer.record(now, KIND_FAULT_DROP,
                                       a=sender, b=recipient, detail=detail,
                                       span=span)
                return None
            if window.kind == "duplicate":
                self._c_duplicated.inc()
                skew = float(self.rng.uniform(0.0, window.magnitude_ms))
                if self.tracer is not None:
                    self.tracer.record(now, KIND_FAULT_DUPLICATE,
                                       a=sender, b=recipient, detail=detail,
                                       span=span)
                network.schedule_delivery(
                    sender, recipient, payload, kind, latency_ms + skew,
                    span=span)
            elif window.kind == "delay":
                self._c_delayed.inc()
                jitter = float(self.rng.uniform(0.0, window.magnitude_ms))
                latency_ms += window.magnitude_ms + jitter
                if self.tracer is not None:
                    self.tracer.record(now, KIND_FAULT_DELAY,
                                       a=sender, b=recipient, detail=detail,
                                       span=span)
            else:  # "reorder"
                self._c_reordered.inc()
                latency_ms += float(self.rng.uniform(0.0, window.magnitude_ms))
                if self.tracer is not None:
                    self.tracer.record(now, KIND_FAULT_REORDER,
                                       a=sender, b=recipient, detail=detail,
                                       span=span)
        return latency_ms

"""Seeded, declarative fault schedules.

A :class:`FaultPlan` is a *complete, immutable description* of every
adversity one simulation run will face: per-link message faults
(:class:`FaultWindow` — drop, duplicate, delay, reorder), overlay
partitions (:class:`PartitionWindow` — a seeded split into components
that heals at a fixed time), and peer crashes with optional restarts
(:class:`CrashEvent`).  Plans are built once, up front, from a named
:func:`~repro.sim.random.spawn_rng` stream, so the schedule itself is a
pure function of the seed: two runs with the same plan and the same
protocol seeds are bit-identical, which is what lets the test suite pin
``trace_digest`` values across runs (FoundationDB-style deterministic
simulation testing).

The plan is *data only*; :class:`~repro.faults.injector.FaultInjector`
interprets it against a live :class:`~repro.sim.messaging.MessageNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import FaultPlanError
from ..sim.random import RandomSource, spawn_rng

#: Message-level fault kinds a :class:`FaultWindow` can inject.
FAULT_KINDS = ("drop", "duplicate", "delay", "reorder")


@dataclass(frozen=True)
class FaultWindow:
    """One timed message-fault regime on (a subset of) links.

    While virtual time is inside ``[start_ms, end_ms)`` every message
    whose sender or recipient is in ``peers`` (or every message, when
    ``peers`` is None) suffers the fault with ``probability``:

    * ``drop``      — the message vanishes;
    * ``duplicate`` — a second copy is delivered, skewed by up to
                      ``magnitude_ms``;
    * ``delay``     — transit time grows by ``magnitude_ms`` plus up to
                      the same amount of jitter;
    * ``reorder``   — transit time grows by a uniform draw in
                      ``[0, magnitude_ms)``, breaking FIFO order between
                      messages that share a link.
    """

    kind: str
    start_ms: float
    end_ms: float
    probability: float
    magnitude_ms: float = 0.0
    peers: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.end_ms <= self.start_ms:
            raise FaultPlanError(
                f"window [{self.start_ms}, {self.end_ms}) is empty")
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError("probability must be in (0, 1]")
        if self.magnitude_ms < 0.0:
            raise FaultPlanError("magnitude_ms must be non-negative")
        if self.kind != "drop" and self.magnitude_ms == 0.0:
            raise FaultPlanError(
                f"{self.kind!r} windows need a positive magnitude_ms")

    def active(self, now_ms: float) -> bool:
        """True while the window covers ``now_ms``."""
        return self.start_ms <= now_ms < self.end_ms

    def applies_to(self, sender: int, recipient: int) -> bool:
        """True if the window covers the given link."""
        if self.peers is None:
            return True
        return sender in self.peers or recipient in self.peers


@dataclass(frozen=True)
class PartitionWindow:
    """A temporary split of the peer population into components.

    While active, messages whose endpoints sit in different components
    are dropped; at ``end_ms`` the partition heals.  Peers not listed in
    any component are unaffected (late joiners, for instance).
    """

    start_ms: float
    end_ms: float
    components: tuple[frozenset[int], ...]
    _component_of: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise FaultPlanError(
                f"partition [{self.start_ms}, {self.end_ms}) is empty")
        if len(self.components) < 2:
            raise FaultPlanError("a partition needs at least two components")
        mapping: dict[int, int] = {}
        for index, component in enumerate(self.components):
            for peer in component:
                if peer in mapping:
                    raise FaultPlanError(
                        f"peer {peer} appears in two partition components")
                mapping[peer] = index
        self._component_of.update(mapping)

    def active(self, now_ms: float) -> bool:
        """True while the partition covers ``now_ms``."""
        return self.start_ms <= now_ms < self.end_ms

    def component_of(self, peer_id: int) -> int | None:
        """Component index of ``peer_id`` (None if unassigned)."""
        return self._component_of.get(peer_id)

    def severed(self, sender: int, recipient: int) -> bool:
        """True if the partition cuts the ``sender -> recipient`` link."""
        a = self._component_of.get(sender)
        b = self._component_of.get(recipient)
        return a is not None and b is not None and a != b


@dataclass(frozen=True)
class CrashEvent:
    """A peer crash at ``at_ms`` with an optional later restart."""

    at_ms: float
    peer_id: int
    restart_at_ms: float | None = None

    def __post_init__(self) -> None:
        if self.at_ms < 0.0:
            raise FaultPlanError("crash time must be non-negative")
        if self.restart_at_ms is not None \
                and self.restart_at_ms <= self.at_ms:
            raise FaultPlanError("restart must come after the crash")


@dataclass(frozen=True)
class FaultPlan:
    """The full adversity schedule of one run (immutable data)."""

    windows: tuple[FaultWindow, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()

    def __post_init__(self) -> None:
        for first, second in zip(self.partitions, self.partitions[1:]):
            if second.start_ms < first.end_ms:
                raise FaultPlanError(
                    "partition windows must be sorted and non-overlapping")

    @property
    def is_zero(self) -> bool:
        """True if the plan injects nothing at all."""
        return not (self.windows or self.partitions or self.crashes)

    def active_windows(self, now_ms: float, sender: int,
                       recipient: int) -> list[FaultWindow]:
        """Windows covering this instant and link, in plan order."""
        return [w for w in self.windows
                if w.active(now_ms) and w.applies_to(sender, recipient)]

    def partition_at(self, now_ms: float) -> PartitionWindow | None:
        """The partition active at ``now_ms``, if any."""
        for partition in self.partitions:
            if partition.active(now_ms):
                return partition
        return None

    def end_ms(self) -> float:
        """Virtual time at which the last scheduled adversity ends."""
        end = 0.0
        for window in self.windows:
            end = max(end, window.end_ms)
        for partition in self.partitions:
            end = max(end, partition.end_ms)
        for crash in self.crashes:
            end = max(end, crash.at_ms)
            if crash.restart_at_ms is not None:
                end = max(end, crash.restart_at_ms)
        return end

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (attached injectors become transparent)."""
        return cls()

    @classmethod
    def split(cls, rng: RandomSource, peer_ids: Sequence[int],
              n_components: int = 2) -> tuple[frozenset[int], ...]:
        """Assign peers to ``n_components`` seeded partition components.

        Every component is guaranteed non-empty (requires at least
        ``n_components`` peers).
        """
        ids = list(peer_ids)
        if len(ids) < n_components:
            raise FaultPlanError(
                f"cannot split {len(ids)} peers into {n_components} "
                "components")
        order = [ids[int(i)] for i in rng.permutation(len(ids))]
        buckets: list[list[int]] = [[] for _ in range(n_components)]
        # Seed each bucket, then scatter the rest uniformly.
        for index in range(n_components):
            buckets[index].append(order[index])
        for peer in order[n_components:]:
            buckets[int(rng.integers(n_components))].append(peer)
        return tuple(frozenset(bucket) for bucket in buckets)

    @classmethod
    def adversarial(
        cls,
        seed: int,
        peer_ids: Sequence[int],
        start_ms: float,
        duration_ms: float,
        crash_candidates: Sequence[int] = (),
        crash_count: int = 2,
        restart_fraction: float = 0.5,
        drop_probability: float = 0.05,
        duplicate_probability: float = 0.1,
        reorder_probability: float = 0.3,
        reorder_skew_ms: float = 40.0,
        n_components: int = 2,
    ) -> "FaultPlan":
        """The canonical adversarial schedule: partition + reorder +
        duplicate + drop windows and mid-run crashes.

        Everything is derived from ``spawn_rng(seed, "fault-plan")``, so
        the same arguments always produce the same plan.  The timeline
        (relative to ``start_ms``, each phase ``duration_ms / 4`` long)::

            [0, 1/4)   reorder + duplicate window
            [1/4, 2/4) partition into ``n_components`` components
            [2/4, 3/4) drop window; crashes fire in here
            [3/4, 1)   calm tail (restarts fire in here)
        """
        if duration_ms <= 0.0:
            raise FaultPlanError("duration_ms must be positive")
        rng = spawn_rng(seed, "fault-plan")
        quarter = duration_ms / 4.0
        t0 = start_ms
        windows = (
            FaultWindow("reorder", t0, t0 + quarter,
                        reorder_probability, reorder_skew_ms),
            FaultWindow("duplicate", t0, t0 + quarter,
                        duplicate_probability, reorder_skew_ms / 2.0),
            FaultWindow("drop", t0 + 2 * quarter, t0 + 3 * quarter,
                        drop_probability),
        )
        partitions = (
            PartitionWindow(
                t0 + quarter, t0 + 2 * quarter,
                cls.split(rng, peer_ids, n_components)),
        )
        crashes: list[CrashEvent] = []
        candidates = list(crash_candidates)
        if candidates and crash_count > 0:
            picks = rng.choice(len(candidates),
                               size=min(crash_count, len(candidates)),
                               replace=False)
            for index in sorted(int(i) for i in picks):
                victim = candidates[index]
                at = t0 + 2 * quarter + float(rng.uniform(0.0, quarter))
                restart = None
                if rng.random() < restart_fraction:
                    restart = t0 + 3 * quarter + float(
                        rng.uniform(0.0, quarter))
                crashes.append(CrashEvent(at, victim, restart))
        crashes.sort(key=lambda c: (c.at_ms, c.peer_id))
        return cls(windows=windows, partitions=partitions,
                   crashes=tuple(crashes))


def apply_partition(overlay, components: Iterable[frozenset[int]]
                    ) -> list[tuple[int, int]]:
    """Sever overlay links crossing partition components.

    Returns the removed links so :func:`heal_partition` can restore them.
    Works on any object with ``edges()`` / ``remove_link`` (the
    :class:`~repro.overlay.graph.OverlayNetwork` contract).
    """
    component_of: dict[int, int] = {}
    for index, component in enumerate(components):
        for peer in component:
            component_of[peer] = index
    severed: list[tuple[int, int]] = []
    for a, b in list(overlay.edges()):
        ca = component_of.get(a)
        cb = component_of.get(b)
        if ca is not None and cb is not None and ca != cb:
            overlay.remove_link(a, b)
            severed.append((a, b))
    return severed


def heal_partition(overlay, severed: Iterable[tuple[int, int]]) -> int:
    """Restore previously severed links whose endpoints still exist.

    Returns the number of links re-added.
    """
    restored = 0
    for a, b in severed:
        if a in overlay and b in overlay and not overlay.has_link(a, b):
            overlay.add_link(a, b)
            restored += 1
    return restored

"""Deterministic fault injection and protocol invariant checking.

Three pieces build the adversarial-testing harness:

* :mod:`.plan` — :class:`FaultPlan`, an immutable seeded schedule of
  message-fault windows (drop/duplicate/delay/reorder), overlay
  partitions and peer crash/restart events;
* :mod:`.injector` — :class:`FaultInjector`, which executes a plan
  against a live :class:`~repro.sim.messaging.MessageNetwork` and the
  event simulator, counting every injected fault under ``faults.*``
  registry instruments and recording it in the trace stream;
* :mod:`.invariants` — checker pack (:class:`InvariantSuite`) evaluated
  at simulator checkpoints: spanning-tree structure, member
  reachability, overlay connectivity bounds, heartbeat-view consistency
  and registry counter monotonicity.

Everything is seeded through :func:`~repro.sim.random.spawn_rng`, so a
given plan produces a bit-identical run — the ``trace_digest`` of two
identically-seeded adversarial runs matches exactly.
"""

from .injector import FaultInjector
from .invariants import (
    CounterMonotonicity,
    InvariantSuite,
    Violation,
    check_heartbeat_view,
    check_members_reachable,
    check_overlay_connectivity,
    check_session_tree,
    check_tree_structure,
)
from .plan import (
    FAULT_KINDS,
    CrashEvent,
    FaultPlan,
    FaultWindow,
    PartitionWindow,
    apply_partition,
    heal_partition,
)

__all__ = [
    "FAULT_KINDS",
    "CrashEvent",
    "CounterMonotonicity",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
    "InvariantSuite",
    "PartitionWindow",
    "Violation",
    "apply_partition",
    "check_heartbeat_view",
    "check_members_reachable",
    "check_overlay_connectivity",
    "check_session_tree",
    "check_tree_structure",
    "heal_partition",
]

"""Continuously-checked protocol invariants.

The fault harness is only as good as the properties it checks while the
adversity is live.  This module packages the GroupCast invariants as
small *checker* callables returning a list of human-readable violation
strings (empty = healthy), plus an :class:`InvariantSuite` that runs a
set of named checkers at simulator checkpoints
(:meth:`repro.sim.engine.Simulator.every`) and folds the results into
``invariants.*`` registry counters.

Checkers never mutate the state they inspect, and they re-derive every
property independently of the code under test (e.g. tree acyclicity is
re-checked from raw parent/child maps, not via
:meth:`SpanningTree.validate`), so a bug in the protocol's own
bookkeeping cannot hide a violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from ..errors import InvariantViolation
from ..obs.registry import Registry
from ..sim.engine import Simulator

#: A checker inspects some state and returns violation messages.
Checker = Callable[[], list[str]]


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed at one checkpoint."""

    at_ms: float
    checker: str
    message: str


# ----------------------------------------------------------------------
# Spanning-tree checkers
# ----------------------------------------------------------------------
def check_tree_structure(tree) -> list[str]:
    """Acyclicity, single-parent and parent/child agreement.

    Re-derives the properties from the tree's raw maps: every non-root
    node has exactly one parent that lists it as a child, parent chains
    terminate at the root without revisiting a node, and no node is
    unreachable from the root.
    """
    violations: list[str] = []
    parent = tree._parent
    children = tree._children
    root = tree.root
    if parent.get(root, 0) is not None:
        violations.append(f"root {root} has a parent")
    for node, node_parent in parent.items():
        if node == root:
            continue
        if node_parent is None:
            violations.append(f"node {node} is parentless (not the root)")
            continue
        if node_parent not in parent:
            violations.append(
                f"node {node} hangs under missing parent {node_parent}")
        elif node not in children.get(node_parent, set()):
            violations.append(
                f"parent {node_parent} does not list child {node}")
    for node, kids in children.items():
        for child in kids:
            if parent.get(child) != node:
                violations.append(
                    f"child {child} disagrees about parent {node}")
    # Cycle / reachability via parent-chain walk.
    for node in parent:
        seen = {node}
        current = node
        while (up := parent.get(current)) is not None:
            if up in seen:
                violations.append(f"parent-pointer cycle through {up}")
                break
            if up not in parent:
                break  # already reported above
            seen.add(up)
            current = up
        else:
            if current != root:
                violations.append(
                    f"node {node} is not connected to root {root}")
    return violations


def check_members_reachable(tree, expected_members: Iterable[int],
                            lost_members: Callable[[], set] | set
                            ) -> list[str]:
    """Every expected member is on the tree or declared lost.

    ``lost_members`` may be a set or a zero-argument callable (so the
    harness can grow the set as crashes are consumed).
    """
    lost = lost_members() if callable(lost_members) else lost_members
    on_tree = tree.members
    violations = []
    for member in expected_members:
        if member not in on_tree and member not in lost:
            violations.append(
                f"member {member} fell off the tree without being "
                f"declared lost")
    return violations


# ----------------------------------------------------------------------
# Overlay checkers
# ----------------------------------------------------------------------
def check_overlay_connectivity(overlay, min_largest_fraction: float = 0.5,
                               max_components: int | None = None
                               ) -> list[str]:
    """Bound the overlay's connectivity degradation.

    The largest connected component must retain at least
    ``min_largest_fraction`` of the peers, and (optionally) the number
    of components must not exceed ``max_components``.
    """
    if len(overlay) == 0:
        return []
    sizes = overlay.connected_component_sizes()
    violations = []
    fraction = sizes[0] / len(overlay)
    if fraction < min_largest_fraction:
        violations.append(
            f"largest component holds {fraction:.2%} of peers "
            f"(< {min_largest_fraction:.0%})")
    if max_components is not None and len(sizes) > max_components:
        violations.append(
            f"overlay split into {len(sizes)} components "
            f"(> {max_components})")
    return violations


def check_heartbeat_view(maintenance, overlay) -> list[str]:
    """Maintenance liveness view agrees with the overlay graph.

    Every peer the daemon reports alive must exist in the overlay, and
    no alive peer may hold a missed-heartbeat count at/over the failure
    threshold against a neighbor that is itself alive and still linked
    (after a partition heals, a full heartbeat round clears these).
    """
    violations = []
    threshold = maintenance.config.missed_heartbeats_for_failure
    alive = set(maintenance.alive_peers())
    for peer in alive:
        if peer not in overlay:
            violations.append(
                f"peer {peer} is alive per maintenance but missing "
                f"from the overlay")
            continue
        for neighbor, missed in maintenance.missed_heartbeats(peer).items():
            if missed >= threshold and neighbor in alive \
                    and neighbor in overlay \
                    and overlay.has_link(peer, neighbor):
                violations.append(
                    f"peer {peer} holds {missed} missed heartbeats "
                    f"against live neighbor {neighbor}")
    return violations


# ----------------------------------------------------------------------
# Session checkers (event-driven runtime)
# ----------------------------------------------------------------------
def check_session_tree(session, group_id: int,
                       lost_members: Callable[[], set] | set = frozenset()
                       ) -> list[str]:
    """Upstream pointers of a live session form a tree to the rendezvous.

    Checks acyclicity of the per-peer ``upstream`` pointers and that
    every on-tree member's upstream chain reaches the group's rendezvous
    through live peers — unless the member has been declared lost.
    """
    lost = lost_members() if callable(lost_members) else lost_members
    rendezvous = session.rendezvous.get(group_id)
    if rendezvous is None:
        return [f"group {group_id} has no recorded rendezvous"]
    violations = []
    upstream = {
        peer_id: node.state(group_id).upstream
        for peer_id, node in session.nodes.items()
        if group_id in node.groups and node.state(group_id).on_tree
    }
    for peer_id, node in session.nodes.items():
        if group_id not in node.groups:
            continue
        state = node.state(group_id)
        if not (state.is_member and state.on_tree) or peer_id in lost:
            continue
        seen = {peer_id}
        current = peer_id
        while current != rendezvous:
            up = upstream.get(current)
            if up is None:
                violations.append(
                    f"member {peer_id}'s upstream chain breaks at "
                    f"{current} (upstream gone or off-tree)")
                break
            if up in seen:
                violations.append(
                    f"member {peer_id}'s upstream chain cycles at {up}")
                break
            seen.add(up)
            current = up
    return violations


# ----------------------------------------------------------------------
# Registry checker
# ----------------------------------------------------------------------
class CounterMonotonicity:
    """Stateful checker: counters never decrease and never go negative.

    Holds the last observed value of every counter; a later checkpoint
    seeing a smaller (or negative) value reports a violation.  New
    counters appearing between checkpoints are adopted silently.
    """

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self._last: dict[str, int] = {}

    def __call__(self) -> list[str]:
        violations = []
        for name, value in self.registry.counters().items():
            if value < 0:
                violations.append(f"counter {name} is negative ({value})")
            previous = self._last.get(name)
            if previous is not None and value < previous:
                violations.append(
                    f"counter {name} decreased from {previous} to {value}")
            self._last[name] = value
        return violations


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------
class InvariantSuite:
    """Named checkers evaluated together at simulator checkpoints."""

    def __init__(self, registry: Optional[Registry] = None,
                 strict: bool = False) -> None:
        self.registry = registry if registry is not None else Registry()
        self.strict = strict
        self._checkers: list[tuple[str, Checker]] = []
        self.violations: list[Violation] = []
        self._c_checks = self.registry.counter("invariants.checks")
        self._c_violations = self.registry.counter("invariants.violations")

    def add(self, name: str, checker: Checker) -> "InvariantSuite":
        """Register a checker under a stable name (returns self)."""
        self._checkers.append((name, checker))
        return self

    def names(self) -> list[str]:
        """Registered checker names, in registration order."""
        return [name for name, _ in self._checkers]

    def run(self, at_ms: float = 0.0) -> list[Violation]:
        """Run every checker once; returns (and records) new violations.

        With ``strict=True`` the first violating checkpoint raises
        :class:`~repro.errors.InvariantViolation` instead of
        accumulating.
        """
        fresh: list[Violation] = []
        for name, checker in self._checkers:
            self._c_checks.inc()
            for message in checker():
                fresh.append(Violation(at_ms, name, message))
        if fresh:
            self._c_violations.inc(len(fresh))
            self.violations.extend(fresh)
            if self.strict:
                first = fresh[0]
                raise InvariantViolation(
                    f"[{first.checker} @ {first.at_ms:.1f}ms] "
                    f"{first.message}"
                    + (f" (+{len(fresh) - 1} more)" if len(fresh) > 1
                       else ""))
        return fresh

    def attach(self, simulator: Simulator, interval_ms: float) -> None:
        """Evaluate the suite every ``interval_ms`` of virtual time."""
        simulator.every(interval_ms, lambda: self.run(simulator.now))

    @property
    def healthy(self) -> bool:
        """True while no checkpoint has reported a violation."""
        return not self.violations

    def violations_by_checker(self) -> dict[str, int]:
        """Violation counts keyed by checker name."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.checker] = counts.get(violation.checker, 0) + 1
        return counts

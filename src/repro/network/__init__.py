"""IP underlay substrate: GT-ITM style topologies, routing, IP multicast."""

from .topology import Router, RouterLevel, generate_transit_stub
from .underlay import Attachment, UnderlayNetwork
from .multicast import IPMulticastTree, build_ip_multicast_tree

__all__ = [
    "Router",
    "RouterLevel",
    "generate_transit_stub",
    "Attachment",
    "UnderlayNetwork",
    "IPMulticastTree",
    "build_ip_multicast_tree",
]

"""Router-level underlay network with peer attachments and routing.

:class:`UnderlayNetwork` holds the router graph produced by
:func:`repro.network.topology.generate_transit_stub`, answers shortest-path
queries (latency, hop paths) through the array-backed
:class:`~repro.network.routing.RoutingCore`, and manages *peer
attachments*: end hosts attached to random stub routers through an access
link, exactly as in the paper's setup ("peers are randomly attached to the
stub domain routers").

Distances between peers are
``access(a) + shortest_path(router(a), router(b)) + access(b)`` in
milliseconds; a peer's distance to itself is zero.  The scalar methods
(:meth:`peer_distance_ms`, :meth:`peer_path_links`, ...) remain the
reference semantics; the bulk methods (:meth:`peer_distances_ms`,
:meth:`peer_distance_matrix`, :meth:`peer_hop_counts`,
:meth:`peer_path_links_many`, :meth:`multicast_links`) compute the same
values bit-for-bit with vectorized gathers and predecessor-array walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from ..errors import RoutingError, TopologyError
from ..sim.random import RandomSource
from .routing import EMPTY_F64, EMPTY_I64, RoutingCore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .topology import Router


@dataclass(frozen=True)
class Attachment:
    """A peer's point of presence on the underlay."""

    peer_id: int
    router_id: int
    access_latency_ms: float


class UnderlayNetwork:
    """The physical network: routers, weighted links, and peer attachments."""

    def __init__(
        self,
        routers: Sequence["Router"],
        edges: Iterable[tuple[int, int, float]],
        stub_router_ids: np.ndarray,
        peer_access_latency: tuple[float, float],
    ) -> None:
        self.routers = list(routers)
        n = len(self.routers)
        edge_list = list(edges)
        if not edge_list:
            raise TopologyError("underlay has no links")
        rows, cols, weights = [], [], []
        seen: set[tuple[int, int]] = set()
        for a, b, w in edge_list:
            if a == b:
                raise TopologyError(f"self-loop on router {a}")
            if w <= 0.0:
                raise TopologyError(f"non-positive latency on link {a}-{b}")
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            rows.extend((a, b))
            cols.extend((b, a))
            weights.extend((w, w))
        self._graph = coo_matrix(
            (weights, (rows, cols)), shape=(n, n)).tocsr()
        n_components, _ = connected_components(self._graph, directed=False)
        if n_components != 1:
            raise TopologyError(
                f"underlay is disconnected ({n_components} components)")
        self._link_latency = {
            (min(a, b), max(a, b)): w for a, b, w in edge_list}
        self._stub_router_ids = stub_router_ids
        self._peer_access_latency = peer_access_latency
        self._attachments: dict[int, Attachment] = {}
        self._core = RoutingCore(self._graph, n)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def router_count(self) -> int:
        """Number of routers in the underlay."""
        return len(self.routers)

    @property
    def routing(self) -> RoutingCore:
        """The shared routing core (row caches, bulk Dijkstra state)."""
        return self._core

    @property
    def link_count(self) -> int:
        """Number of undirected physical links."""
        return len(self._link_latency)

    def link_latency_ms(self, a: int, b: int) -> float:
        """Latency of the physical link between routers ``a`` and ``b``."""
        try:
            return self._link_latency[(min(a, b), max(a, b))]
        except KeyError:
            raise RoutingError(f"no physical link between {a} and {b}")

    # ------------------------------------------------------------------
    # Peer attachments
    # ------------------------------------------------------------------
    def attach_peer(self, peer_id: int, rng: RandomSource) -> Attachment:
        """Attach ``peer_id`` to a uniformly random stub router."""
        if peer_id in self._attachments:
            raise TopologyError(f"peer {peer_id} is already attached")
        router = int(rng.choice(self._stub_router_ids))
        low, high = self._peer_access_latency
        attachment = Attachment(peer_id, router, float(rng.uniform(low, high)))
        self._attachments[peer_id] = attachment
        self._core.attach(peer_id, router, attachment.access_latency_ms)
        return attachment

    def attachment(self, peer_id: int) -> Attachment:
        """Return the attachment of ``peer_id``."""
        try:
            return self._attachments[peer_id]
        except KeyError:
            raise TopologyError(f"peer {peer_id} is not attached")

    @property
    def attached_peer_count(self) -> int:
        """Number of peers currently attached."""
        return len(self._attachments)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _routes_from(self, router: int) -> tuple[np.ndarray, np.ndarray]:
        return self._core.rows_for(router)

    def router_distance_ms(self, a: int, b: int) -> float:
        """Shortest-path latency between two routers."""
        dist, _ = self._routes_from(a)
        return float(dist[b])

    def router_distances_from(self, router: int) -> np.ndarray:
        """Vector of shortest-path latencies from ``router`` to all routers."""
        dist, _ = self._routes_from(router)
        return dist

    def router_path(self, a: int, b: int) -> list[int]:
        """Router sequence of the shortest path from ``a`` to ``b``."""
        dist, pred = self._routes_from(a)
        if not np.isfinite(dist[b]):
            raise RoutingError(f"routers {a} and {b} are disconnected")
        path = [b]
        node = b
        while node != a:
            node = int(pred[node])
            if node < 0:
                raise RoutingError(f"broken predecessor chain {a}->{b}")
            path.append(node)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Peer-level queries
    # ------------------------------------------------------------------
    def peer_distance_ms(self, a: int, b: int) -> float:
        """End-to-end latency between two attached peers."""
        if a == b:
            return 0.0
        att_a = self.attachment(a)
        att_b = self.attachment(b)
        return (att_a.access_latency_ms
                + self.router_distance_ms(att_a.router_id, att_b.router_id)
                + att_b.access_latency_ms)

    def peer_distances_ms(self, peer_id: int,
                          others: Sequence[int]) -> np.ndarray:
        """Vector of end-to-end latencies from ``peer_id`` to ``others``.

        A single numpy gather over the source's Dijkstra row replaces the
        per-element :meth:`peer_distance_ms` arithmetic; entries equal to
        ``peer_id`` come out as exactly 0.0, matching the scalar path.
        An empty ``others`` returns a shared read-only empty float64
        vector without building any intermediate arrays.
        """
        att = self.attachment(peer_id)
        if len(others) == 0:
            return EMPTY_F64
        idx, routers, access = self._core.attach_info(others)
        dist, _ = self._routes_from(att.router_id)
        # Same operand order as peer_distance_ms, so results match
        # bit-for-bit: access(a) + router_distance + access(b).
        out = att.access_latency_ms + dist[routers] + access
        self_mask = idx == peer_id
        if self_mask.any():
            out[self_mask] = 0.0
        return out

    def peer_distance_matrix(self, peers: Sequence[int],
                             others: Sequence[int] | None = None
                             ) -> np.ndarray:
        """Pairwise latency matrix ``(len(peers), len(others))``.

        ``others`` defaults to ``peers`` (the symmetric all-pairs case).
        Entry ``[i, j]`` equals ``peer_distance_ms(peers[i], others[j])``
        bit-for-bit; pairs with equal peer ids are exactly 0.0.
        """
        if others is None:
            others = peers
        if len(peers) == 0 or len(others) == 0:
            return np.empty((len(peers), len(others)), dtype=np.float64)
        idx_a, routers_a, access_a = self._core.attach_info(peers)
        idx_b, routers_b, access_b = self._core.attach_info(others)
        block, inverse = self._core.distance_block(routers_a)
        gathered = block[inverse[:, None], routers_b[None, :]]
        out = access_a[:, None] + gathered + access_b[None, :]
        self_mask = idx_a[:, None] == idx_b[None, :]
        if self_mask.any():
            out[self_mask] = 0.0
        return out

    def peer_pair_distances(self, peers_a: Sequence[int],
                            peers_b: Sequence[int]) -> np.ndarray:
        """Elementwise latencies ``peer_distance_ms(peers_a[i], peers_b[i])``.

        One flat gather for an arbitrary pair list — the building block
        for neighbor-distance metrics and coordinate-error sampling.
        """
        if len(peers_a) != len(peers_b):
            raise TopologyError(
                "peer_pair_distances needs equal-length id vectors")
        if len(peers_a) == 0:
            return EMPTY_F64
        idx_a, routers_a, access_a = self._core.attach_info(peers_a)
        idx_b, routers_b, access_b = self._core.attach_info(peers_b)
        block, inverse = self._core.distance_block(routers_a)
        out = access_a + block[inverse, routers_b] + access_b
        self_mask = idx_a == idx_b
        if self_mask.any():
            out[self_mask] = 0.0
        return out

    def peer_path_links(self, a: int, b: int) -> list[tuple[int, int]]:
        """Physical links traversed by a unicast packet from ``a`` to ``b``.

        Access links are encoded as ``(-peer_id - 1, router_id)`` so they are
        disjoint from router-router links; router links are normalised
        ``(min, max)`` pairs.  Used by the link-stress metric, where every
        physical link traversed carries one copy of the payload.
        """
        if a == b:
            return []
        att_a = self.attachment(a)
        att_b = self.attachment(b)
        _, pred = self._routes_from(att_a.router_id)
        return self._links_between(a, att_a.router_id, b,
                                   att_b.router_id, pred)

    def _links_between(self, a: int, router_a: int, b: int, router_b: int,
                       pred: np.ndarray) -> list[tuple[int, int]]:
        """Link list of the unicast route, walked off a predecessor row."""
        links: list[tuple[int, int]] = [(-a - 1, router_a)]
        hops: list[tuple[int, int]] = []
        node = router_b
        while node != router_a:
            parent = int(pred[node])
            if parent < 0:
                raise RoutingError(
                    f"broken predecessor chain {router_a}->{router_b}")
            hops.append((min(parent, node), max(parent, node)))
            node = parent
        links.extend(reversed(hops))
        links.append((-b - 1, router_b))
        return links

    def peer_path_links_many(
        self, peer_id: int, others: Sequence[int]
    ) -> list[list[tuple[int, int]]]:
        """Per-target :meth:`peer_path_links` lists, sharing one row fetch.

        Targets equal to ``peer_id`` yield an empty list, matching the
        scalar path.
        """
        att = self.attachment(peer_id)
        if len(others) == 0:
            return []
        idx, routers, _ = self._core.attach_info(others)
        _, pred = self._routes_from(att.router_id)
        out: list[list[tuple[int, int]]] = []
        for other, router in zip(idx.tolist(), routers.tolist()):
            if other == peer_id:
                out.append([])
            else:
                out.append(self._links_between(
                    peer_id, att.router_id, other, router, pred))
        return out

    def peer_hop_count(self, a: int, b: int) -> int:
        """Number of physical links between two peers (0 if colocated)."""
        if a == b:
            return 0
        att_a = self.attachment(a)
        att_b = self.attachment(b)
        depth = self._core.depth_row(att_a.router_id)
        # Two access links plus the router-level shortest-path hops.
        return int(depth[att_b.router_id]) + 2

    def peer_hop_counts(self, peer_id: int,
                        others: Sequence[int]) -> np.ndarray:
        """Vector of :meth:`peer_hop_count` from ``peer_id`` to ``others``."""
        att = self.attachment(peer_id)
        if len(others) == 0:
            return EMPTY_I64
        idx, routers, _ = self._core.attach_info(others)
        depth = self._core.depth_row(att.router_id)
        out = depth[routers] + 2
        self_mask = idx == peer_id
        if self_mask.any():
            out[self_mask] = 0
        return out

    def multicast_links(self, source: int,
                        receivers: Sequence[int]) -> set[tuple[int, int]]:
        """Union of :meth:`peer_path_links` from ``source`` to ``receivers``.

        Merging the unicast routes of one Dijkstra source yields a
        shortest-path tree at the router level, so the union is built by
        walking the predecessor array from each receiver router toward
        the source and stopping at the first already-visited router —
        every router is visited at most once regardless of how many
        receivers sit behind it.
        """
        att_s = self.attachment(source)
        idx, routers, _ = self._core.attach_info(receivers)
        if (idx == source).any():
            raise TopologyError(
                "multicast_links receivers must exclude the source")
        _, pred = self._routes_from(att_s.router_id)
        links: set[tuple[int, int]] = {(-source - 1, att_s.router_id)}
        for peer, router in zip(idx.tolist(), routers.tolist()):
            links.add((-peer - 1, router))
        visited = np.zeros(self.router_count, dtype=bool)
        visited[att_s.router_id] = True
        for router in np.unique(routers).tolist():
            node = router
            while not visited[node]:
                visited[node] = True
                parent = int(pred[node])
                if parent < 0:
                    raise RoutingError(
                        f"broken predecessor chain "
                        f"{att_s.router_id}->{router}")
                links.add((min(parent, node), max(parent, node)))
                node = parent
        return links

"""Router-level underlay network with peer attachments and routing.

:class:`UnderlayNetwork` holds the router graph produced by
:func:`repro.network.topology.generate_transit_stub`, answers shortest-path
queries (latency, hop paths) via scipy's Dijkstra with per-source caching,
and manages *peer attachments*: end hosts attached to random stub routers
through an access link, exactly as in the paper's setup ("peers are
randomly attached to the stub domain routers").

Distances between peers are
``access(a) + shortest_path(router(a), router(b)) + access(b)`` in
milliseconds; a peer's distance to itself is zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

from ..errors import RoutingError, TopologyError
from ..sim.random import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .topology import Router


@dataclass(frozen=True)
class Attachment:
    """A peer's point of presence on the underlay."""

    peer_id: int
    router_id: int
    access_latency_ms: float


class UnderlayNetwork:
    """The physical network: routers, weighted links, and peer attachments."""

    def __init__(
        self,
        routers: Sequence["Router"],
        edges: Iterable[tuple[int, int, float]],
        stub_router_ids: np.ndarray,
        peer_access_latency: tuple[float, float],
    ) -> None:
        self.routers = list(routers)
        n = len(self.routers)
        edge_list = list(edges)
        if not edge_list:
            raise TopologyError("underlay has no links")
        rows, cols, weights = [], [], []
        seen: set[tuple[int, int]] = set()
        for a, b, w in edge_list:
            if a == b:
                raise TopologyError(f"self-loop on router {a}")
            if w <= 0.0:
                raise TopologyError(f"non-positive latency on link {a}-{b}")
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            rows.extend((a, b))
            cols.extend((b, a))
            weights.extend((w, w))
        self._graph = coo_matrix(
            (weights, (rows, cols)), shape=(n, n)).tocsr()
        n_components, _ = connected_components(self._graph, directed=False)
        if n_components != 1:
            raise TopologyError(
                f"underlay is disconnected ({n_components} components)")
        self._link_latency = {
            (min(a, b), max(a, b)): w for a, b, w in edge_list}
        self._stub_router_ids = stub_router_ids
        self._peer_access_latency = peer_access_latency
        self._attachments: dict[int, Attachment] = {}
        # Parallel maps for the vectorized distance gather.
        self._attach_router: dict[int, int] = {}
        self._attach_access: dict[int, float] = {}
        # Per-source Dijkstra cache: router -> (distances, predecessors).
        self._route_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def router_count(self) -> int:
        """Number of routers in the underlay."""
        return len(self.routers)

    @property
    def link_count(self) -> int:
        """Number of undirected physical links."""
        return len(self._link_latency)

    def link_latency_ms(self, a: int, b: int) -> float:
        """Latency of the physical link between routers ``a`` and ``b``."""
        try:
            return self._link_latency[(min(a, b), max(a, b))]
        except KeyError:
            raise RoutingError(f"no physical link between {a} and {b}")

    # ------------------------------------------------------------------
    # Peer attachments
    # ------------------------------------------------------------------
    def attach_peer(self, peer_id: int, rng: RandomSource) -> Attachment:
        """Attach ``peer_id`` to a uniformly random stub router."""
        if peer_id in self._attachments:
            raise TopologyError(f"peer {peer_id} is already attached")
        router = int(rng.choice(self._stub_router_ids))
        low, high = self._peer_access_latency
        attachment = Attachment(peer_id, router, float(rng.uniform(low, high)))
        self._attachments[peer_id] = attachment
        self._attach_router[peer_id] = router
        self._attach_access[peer_id] = attachment.access_latency_ms
        return attachment

    def attachment(self, peer_id: int) -> Attachment:
        """Return the attachment of ``peer_id``."""
        try:
            return self._attachments[peer_id]
        except KeyError:
            raise TopologyError(f"peer {peer_id} is not attached")

    @property
    def attached_peer_count(self) -> int:
        """Number of peers currently attached."""
        return len(self._attachments)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _routes_from(self, router: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= router < self.router_count:
            raise RoutingError(f"unknown router {router}")
        cached = self._route_cache.get(router)
        if cached is None:
            dist, pred = dijkstra(
                self._graph, directed=False, indices=router,
                return_predecessors=True)
            cached = (dist, pred)
            self._route_cache[router] = cached
        return cached

    def router_distance_ms(self, a: int, b: int) -> float:
        """Shortest-path latency between two routers."""
        dist, _ = self._routes_from(a)
        return float(dist[b])

    def router_distances_from(self, router: int) -> np.ndarray:
        """Vector of shortest-path latencies from ``router`` to all routers."""
        dist, _ = self._routes_from(router)
        return dist

    def router_path(self, a: int, b: int) -> list[int]:
        """Router sequence of the shortest path from ``a`` to ``b``."""
        dist, pred = self._routes_from(a)
        if not np.isfinite(dist[b]):
            raise RoutingError(f"routers {a} and {b} are disconnected")
        path = [b]
        node = b
        while node != a:
            node = int(pred[node])
            if node < 0:
                raise RoutingError(f"broken predecessor chain {a}->{b}")
            path.append(node)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Peer-level queries
    # ------------------------------------------------------------------
    def peer_distance_ms(self, a: int, b: int) -> float:
        """End-to-end latency between two attached peers."""
        if a == b:
            return 0.0
        att_a = self.attachment(a)
        att_b = self.attachment(b)
        return (att_a.access_latency_ms
                + self.router_distance_ms(att_a.router_id, att_b.router_id)
                + att_b.access_latency_ms)

    def peer_distances_ms(self, peer_id: int,
                          others: Sequence[int]) -> np.ndarray:
        """Vector of end-to-end latencies from ``peer_id`` to ``others``.

        A single numpy gather over the cached Dijkstra row replaces the
        per-element :meth:`peer_distance_ms` arithmetic; entries equal to
        ``peer_id`` come out as exactly 0.0, matching the scalar path.
        """
        att = self.attachment(peer_id)
        dist = self.router_distances_from(att.router_id)
        n = len(others)
        try:
            routers = np.fromiter(
                map(self._attach_router.__getitem__, others),
                dtype=np.intp, count=n)
            access = np.fromiter(
                map(self._attach_access.__getitem__, others),
                dtype=np.float64, count=n)
        except KeyError as exc:
            raise TopologyError(
                f"peer {exc.args[0]} is not attached") from None
        # Same operand order as peer_distance_ms, so results match
        # bit-for-bit: access(a) + router_distance + access(b).
        out = att.access_latency_ms + dist[routers] + access
        self_mask = np.asarray(others) == peer_id
        if self_mask.any():
            out[self_mask] = 0.0
        return out

    def peer_path_links(self, a: int, b: int) -> list[tuple[int, int]]:
        """Physical links traversed by a unicast packet from ``a`` to ``b``.

        Access links are encoded as ``(-peer_id - 1, router_id)`` so they are
        disjoint from router-router links; router links are normalised
        ``(min, max)`` pairs.  Used by the link-stress metric, where every
        physical link traversed carries one copy of the payload.
        """
        if a == b:
            return []
        att_a = self.attachment(a)
        att_b = self.attachment(b)
        links: list[tuple[int, int]] = [(-a - 1, att_a.router_id)]
        path = self.router_path(att_a.router_id, att_b.router_id)
        for u, v in zip(path, path[1:]):
            links.append((min(u, v), max(u, v)))
        links.append((-b - 1, att_b.router_id))
        return links

    def peer_hop_count(self, a: int, b: int) -> int:
        """Number of physical links between two peers (0 if colocated)."""
        return len(self.peer_path_links(a, b))

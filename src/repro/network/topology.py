"""Transit-stub underlay topology generation.

The paper simulates the IP network with the Transit-Stub model of the
GT-ITM topology generator (Zegura, Calvert, Bhattacharjee, INFOCOM'96).
This module is a from-scratch Python implementation of that model:

* a top level of ``transit_domains`` domains whose routers form the long
  haul backbone; domains are connected into a ring plus random extra
  inter-domain edges so the backbone is 2-connected in expectation,
* routers inside a transit domain are connected in a ring plus random
  chords,
* each transit router hosts ``stub_domains_per_transit`` stub domains;
  each stub domain is a small connected graph (ring + chords) attached to
  its transit router via one transit-stub edge.

Edge latencies are drawn uniformly from per-level ranges, so backbone hops
are expensive and intra-stub hops are cheap — the locality structure that
proximity-aware protocols exploit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..config import TransitStubConfig
from ..errors import TopologyError
from ..sim.random import RandomSource
from .underlay import UnderlayNetwork


class RouterLevel(enum.Enum):
    """Hierarchy level of a router in the transit-stub model."""

    TRANSIT = "transit"
    STUB = "stub"


@dataclass(frozen=True)
class Router:
    """A router vertex of the underlay graph.

    ``domain`` identifies the transit or stub domain the router belongs to;
    stub domains are numbered globally across the topology.
    """

    router_id: int
    level: RouterLevel
    domain: int


def generate_transit_stub(
    config: TransitStubConfig, rng: RandomSource
) -> UnderlayNetwork:
    """Generate a transit-stub underlay following ``config``.

    Returns a fully constructed :class:`UnderlayNetwork` whose router graph
    is connected by construction (rings at every level, plus the
    transit-stub attachment edges).
    """
    routers: list[Router] = []
    edges: list[tuple[int, int, float]] = []

    def latency(bounds: tuple[float, float]) -> float:
        low, high = bounds
        return float(rng.uniform(low, high))

    # --- transit level -------------------------------------------------
    transit_ids: list[list[int]] = []
    for domain in range(config.transit_domains):
        ids = []
        for _ in range(config.transit_routers_per_domain):
            router_id = len(routers)
            routers.append(Router(router_id, RouterLevel.TRANSIT, domain))
            ids.append(router_id)
        transit_ids.append(ids)
        _connect_ring_with_chords(
            ids, edges, rng,
            chord_prob=config.extra_transit_edge_prob,
            latency_bounds=config.intra_transit_latency,
        )

    # Inter-domain backbone: ring over domains plus random extra edges.
    domains = config.transit_domains
    if domains > 1:
        for d in range(domains):
            a = int(rng.choice(transit_ids[d]))
            b = int(rng.choice(transit_ids[(d + 1) % domains]))
            edges.append((a, b, latency(config.transit_transit_latency)))
        for d1 in range(domains):
            for d2 in range(d1 + 2, domains):
                if (d1 == 0 and d2 == domains - 1) or domains == 2:
                    continue  # already joined by the ring
                if rng.random() < config.extra_transit_edge_prob:
                    a = int(rng.choice(transit_ids[d1]))
                    b = int(rng.choice(transit_ids[d2]))
                    edges.append(
                        (a, b, latency(config.transit_transit_latency)))

    # --- stub level ----------------------------------------------------
    stub_router_ids: list[int] = []
    stub_domain = config.transit_domains  # stub domain numbering continues
    for domain_ids in transit_ids:
        for transit_router in domain_ids:
            for _ in range(config.stub_domains_per_transit):
                ids = []
                for _ in range(config.routers_per_stub):
                    router_id = len(routers)
                    routers.append(
                        Router(router_id, RouterLevel.STUB, stub_domain))
                    ids.append(router_id)
                stub_domain += 1
                _connect_ring_with_chords(
                    ids, edges, rng,
                    chord_prob=config.extra_stub_edge_prob,
                    latency_bounds=config.intra_stub_latency,
                )
                gateway = int(rng.choice(ids))
                edges.append(
                    (transit_router, gateway,
                     latency(config.transit_stub_latency)))
                stub_router_ids.extend(ids)

    if not stub_router_ids:
        raise TopologyError("topology generated no stub routers")

    return UnderlayNetwork(
        routers=routers,
        edges=edges,
        stub_router_ids=np.asarray(stub_router_ids, dtype=np.int64),
        peer_access_latency=config.peer_access_latency,
    )


def _connect_ring_with_chords(
    ids: list[int],
    edges: list[tuple[int, int, float]],
    rng: RandomSource,
    chord_prob: float,
    latency_bounds: tuple[float, float],
) -> None:
    """Connect ``ids`` into a ring plus random chords (in place)."""
    low, high = latency_bounds
    n = len(ids)
    if n == 1:
        return
    if n == 2:
        edges.append((ids[0], ids[1], float(rng.uniform(low, high))))
        return
    for i in range(n):
        edges.append((ids[i], ids[(i + 1) % n], float(rng.uniform(low, high))))
    for i in range(n):
        for j in range(i + 2, n):
            if i == 0 and j == n - 1:
                continue  # ring already covers this pair
            if rng.random() < chord_prob:
                edges.append((ids[i], ids[j], float(rng.uniform(low, high))))

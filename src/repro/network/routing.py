"""Array-backed routing core: bulk Dijkstra with interned rows.

This module is the shared engine behind every latency / path / hop /
link-stress query of the reproduction.  It replaces the original design
— per-source scalar Dijkstra calls memoized in an unbounded dict, plus
per-peer attachment dicts — with three ideas:

* **Array-backed attachments.**  Peer router ids and access latencies
  live in dense numpy vectors indexed by peer id, so a bulk query over
  ``k`` peers is two fancy-indexed gathers instead of ``k`` dict lookups.
* **Bulk multi-source Dijkstra with row interning.**  Routers that have
  peers attached are *interned*: the first query triggers one
  multi-source :func:`scipy.sparse.csgraph.dijkstra` over every attached
  router pending at that moment, and the resulting distance/predecessor
  rows are kept for the lifetime of the network (the set of attached
  routers is bounded by the number of stub routers, not by the number of
  peers).  Ad-hoc sources that never had a peer attached go through a
  small bounded LRU instead, so arbitrary router sweeps cannot grow
  memory without limit.
* **Predecessor-array extraction.**  Hop counts come from a per-source
  depth vector over the shortest-path tree (computed once, cached for
  interned sources), and link-stress / multicast-tree link sets come
  from memoized walks up the predecessor array, visiting every router at
  most once per tree merge.

All distances are computed as ``access(a) + dist_row[router(b)] +
access(b)`` in exactly the operand order of the scalar
``peer_distance_ms`` path, so vectorized and scalar results agree
bit-for-bit (asserted by ``tests/test_routing_core.py``).

Cache behaviour is observable: hit/miss totals are kept as plain ints on
the core *and* mirrored into ``routing.cache_hits`` /
``routing.cache_misses`` counters of the process default
:class:`~repro.obs.registry.Registry` whenever telemetry is enabled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np
from scipy.sparse.csgraph import dijkstra

from ..errors import RoutingError, TopologyError
from ..obs.profiler import phase_timer
from ..obs.registry import get_default_registry

#: Shared immutable empty vectors, handed out for empty bulk queries so
#: callers never pay an allocation for a degenerate request.
EMPTY_F64 = np.empty(0, dtype=np.float64)
EMPTY_F64.flags.writeable = False
EMPTY_INTP = np.empty(0, dtype=np.intp)
EMPTY_INTP.flags.writeable = False
EMPTY_I64 = np.empty(0, dtype=np.int64)
EMPTY_I64.flags.writeable = False

#: Default bound on the ad-hoc (non-attached) source row cache.
DEFAULT_LRU_ROWS = 128


class RoutingCore:
    """Bulk shortest-path state for one underlay router graph."""

    __slots__ = (
        "_graph", "_n", "_router", "_access", "_max_peer",
        "_interned", "_pending", "_lru", "_lru_rows", "_depth",
        "cache_hits", "cache_misses", "bulk_solves", "single_solves",
        "_registry", "_c_hits", "_c_misses",
    )

    def __init__(self, graph, router_count: int,
                 lru_rows: int = DEFAULT_LRU_ROWS) -> None:
        if lru_rows < 1:
            raise RoutingError("lru_rows must be >= 1")
        self._graph = graph
        self._n = router_count
        # Dense attachment vectors, grown geometrically; -1 = unattached.
        self._router = np.full(64, -1, dtype=np.intp)
        self._access = np.zeros(64, dtype=np.float64)
        self._max_peer = -1
        # Interned rows: attached routers, solved in bulk, never evicted.
        self._interned: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._pending: set[int] = set()
        # Bounded LRU for sources that never had a peer attached.
        self._lru: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = \
            OrderedDict()
        self._lru_rows = lru_rows
        # Hop-depth vectors over the shortest-path tree, per source.
        self._depth: dict[int, np.ndarray] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.bulk_solves = 0
        self.single_solves = 0
        self._registry = None
        self._c_hits = None
        self._c_misses = None

    # ------------------------------------------------------------------
    # Attachments
    # ------------------------------------------------------------------
    def attach(self, peer_id: int, router: int, access_ms: float) -> None:
        """Register a peer attachment; interns its router lazily."""
        if peer_id < 0:
            raise TopologyError(f"peer ids must be non-negative: {peer_id}")
        if peer_id >= self._router.shape[0]:
            size = max(peer_id + 1, 2 * self._router.shape[0])
            router_arr = np.full(size, -1, dtype=np.intp)
            router_arr[:self._router.shape[0]] = self._router
            access_arr = np.zeros(size, dtype=np.float64)
            access_arr[:self._access.shape[0]] = self._access
            self._router, self._access = router_arr, access_arr
        self._router[peer_id] = router
        self._access[peer_id] = access_ms
        if peer_id > self._max_peer:
            self._max_peer = peer_id
        if router not in self._interned:
            self._pending.add(router)

    def attach_info(
        self, peers: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ids, routers, access)`` vectors for ``peers``.

        Raises :class:`~repro.errors.TopologyError` naming the first peer
        that is not attached, matching the scalar error path.
        """
        idx = np.asarray(peers, dtype=np.intp)
        if idx.ndim != 1:
            idx = idx.reshape(-1)
        if idx.size == 0:
            return EMPTY_INTP, EMPTY_INTP, EMPTY_F64
        bad = (idx < 0) | (idx > self._max_peer)
        if bad.any():
            raise TopologyError(
                f"peer {int(idx[bad][0])} is not attached")
        routers = self._router[idx]
        missing = routers < 0
        if missing.any():
            raise TopologyError(
                f"peer {int(idx[missing][0])} is not attached")
        return idx, routers, self._access[idx]

    # ------------------------------------------------------------------
    # Row store
    # ------------------------------------------------------------------
    def _count(self, hit: bool) -> None:
        registry = get_default_registry()
        if registry is not self._registry:
            self._registry = registry
            self._c_hits = registry.counter("routing.cache_hits")
            self._c_misses = registry.counter("routing.cache_misses")
        if hit:
            self.cache_hits += 1
            self._c_hits.inc()
        else:
            self.cache_misses += 1
            self._c_misses.inc()

    def _solve_pending(self) -> None:
        with phase_timer("routing.bulk_solve"):
            sources = sorted(self._pending)
            dist, pred = dijkstra(self._graph, directed=False,
                                  indices=sources,
                                  return_predecessors=True)
            for i, router in enumerate(sources):
                self._interned[router] = (dist[i], pred[i])
            self._pending.clear()
            self.bulk_solves += 1

    def rows_for(self, router: int) -> tuple[np.ndarray, np.ndarray]:
        """``(distances, predecessors)`` rows for one source router."""
        if not 0 <= router < self._n:
            raise RoutingError(f"unknown router {router}")
        cached = self._interned.get(router)
        if cached is not None:
            self._count(hit=True)
            return cached
        cached = self._lru.get(router)
        if cached is not None:
            self._lru.move_to_end(router)
            self._count(hit=True)
            return cached
        self._count(hit=False)
        if router in self._pending:
            self._solve_pending()
            return self._interned[router]
        with phase_timer("routing.single_solve"):
            dist, pred = dijkstra(self._graph, directed=False,
                                  indices=[router],
                                  return_predecessors=True)
            cached = (dist[0], pred[0])
        self._lru[router] = cached
        if len(self._lru) > self._lru_rows:
            evicted, _ = self._lru.popitem(last=False)
            self._depth.pop(evicted, None)
        self.single_solves += 1
        return cached

    def depth_row(self, router: int) -> np.ndarray:
        """Hops from ``router`` to every router along shortest paths."""
        depth = self._depth.get(router)
        if depth is not None:
            return depth
        _, pred = self.rows_for(router)
        depth = np.full(self._n, -1, dtype=np.int64)
        depth[router] = 0
        stack: list[int] = []
        for start in range(self._n):
            if depth[start] >= 0:
                continue
            node = start
            while depth[node] < 0:
                stack.append(node)
                parent = int(pred[node])
                if parent < 0:
                    break
                node = parent
            base = depth[node] if depth[node] >= 0 else 0
            while stack:
                base += 1
                depth[stack.pop()] = base
        # Only keep depth rows for sources whose dist/pred rows are kept
        # forever; ad-hoc LRU sources would leak otherwise.
        if router in self._interned or router in self._lru:
            self._depth[router] = depth
        return depth

    # ------------------------------------------------------------------
    # Bulk queries (router-level building blocks)
    # ------------------------------------------------------------------
    def distance_block(
        self, src_routers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(matrix, inverse)`` such that ``matrix[inverse[i]]`` is the
        Dijkstra distance row of ``src_routers[i]``.

        Rows of attached routers come from the interned bulk solve; any
        remaining attached-but-pending routers are solved in one shot.
        """
        unique, inverse = np.unique(src_routers, return_inverse=True)
        if self._pending.intersection(int(r) for r in unique):
            self._solve_pending()
        rows = [self.rows_for(int(r))[0] for r in unique]
        return np.vstack(rows), inverse

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def interned_rows(self) -> int:
        """Number of attached-router rows kept for the network lifetime."""
        return len(self._interned)

    @property
    def lru_rows(self) -> int:
        """Number of ad-hoc rows currently in the bounded cache."""
        return len(self._lru)

    @property
    def lru_capacity(self) -> int:
        """Upper bound on ad-hoc cached rows."""
        return self._lru_rows

    def cache_stats(self) -> dict[str, int]:
        """Plain-dict view of the row-cache counters."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "interned_rows": self.interned_rows,
            "lru_rows": self.lru_rows,
            "bulk_solves": self.bulk_solves,
            "single_solves": self.single_solves,
        }

"""IP multicast reference model.

The paper simulates IP multicast "by merging the unicast routes into
shortest path trees" (Section 4.3) and uses it as the efficiency reference
for end-system multicast: *relative delay penalty* divides average ESM
delay by average IP multicast delay, and *link stress* divides the number
of IP messages an ESM tree generates by the number of links of the IP
multicast tree reaching the same subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import GroupError
from .underlay import UnderlayNetwork


@dataclass(frozen=True)
class IPMulticastTree:
    """A shortest-path IP multicast tree rooted at ``source``.

    ``links`` is the set of physical links in the merged tree (one IP
    message traverses each link per multicast payload); ``delays_ms`` maps
    each subscriber to its shortest-path latency from the source.
    """

    source: int
    subscribers: tuple[int, ...]
    links: frozenset[tuple[int, int]]
    delays_ms: Mapping[int, float]

    @property
    def link_count(self) -> int:
        """Number of physical links carrying the payload (one copy each)."""
        return len(self.links)

    @property
    def average_delay_ms(self) -> float:
        """Mean source-to-subscriber latency."""
        if not self.delays_ms:
            return 0.0
        return sum(self.delays_ms.values()) / len(self.delays_ms)

    @property
    def max_delay_ms(self) -> float:
        """Worst source-to-subscriber latency."""
        if not self.delays_ms:
            return 0.0
        return max(self.delays_ms.values())


def build_ip_multicast_tree(
    underlay: UnderlayNetwork,
    source: int,
    subscribers: Sequence[int],
) -> IPMulticastTree:
    """Merge unicast routes from ``source`` into a shortest-path tree.

    Because all routes share a single Dijkstra source, their union is
    guaranteed to be a tree at the router level.  Delays come from one
    vectorized gather and the link union from a memoized predecessor
    walk (:meth:`~repro.network.underlay.UnderlayNetwork.multicast_links`),
    so the cost is O(receivers + routers) instead of
    O(receivers x path length) scalar queries.
    """
    receivers = [peer for peer in subscribers if peer != source]
    if not receivers:
        raise GroupError("IP multicast tree needs at least one receiver")
    delay_vec = underlay.peer_distances_ms(source, receivers)
    delays = {peer: float(delay)
              for peer, delay in zip(receivers, delay_vec)}
    links = underlay.multicast_links(source, receivers)
    return IPMulticastTree(
        source=source,
        subscribers=tuple(receivers),
        links=frozenset(links),
        delays_ms=delays,
    )


def _build_ip_multicast_tree_scalar(
    underlay: UnderlayNetwork,
    source: int,
    subscribers: Sequence[int],
) -> IPMulticastTree:
    """Reference implementation using per-pair scalar queries.

    Kept as the bit-for-bit oracle for the routing-core equivalence suite
    and as the baseline the ``benchmarks/bench_routing.py`` speedup is
    measured against.  Not used on any production path.
    """
    receivers = [peer for peer in subscribers if peer != source]
    if not receivers:
        raise GroupError("IP multicast tree needs at least one receiver")
    links: set[tuple[int, int]] = set()
    delays: dict[int, float] = {}
    for peer in receivers:
        delays[peer] = underlay.peer_distance_ms(source, peer)
        links.update(underlay.peer_path_links(source, peer))
    return IPMulticastTree(
        source=source,
        subscribers=tuple(receivers),
        links=frozenset(links),
        delays_ms=delays,
    )

"""Wiring the message guards into the event-driven session.

A :class:`GuardedNode` wraps a session node's handler: every incoming
envelope must carry a :class:`~repro.security.guards.GuardedMessage`
whose token verifies under the group key, or it is dropped and counted.
Senders wrap outgoing payloads with :meth:`GuardedNode.outgoing`.  An
attacker without the group key can still *send* bytes — the guard makes
sure they never reach the protocol state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim.messaging import Envelope
from .guards import (
    GroupKeyAuthority,
    GuardedMessage,
    SignatureError,
    guard_message,
    verify_message,
)


@dataclass
class GuardedNode:
    """Per-peer guard in front of a protocol message handler."""

    peer_id: int
    group_id: int
    key: bytes
    inner_handler: object  # Callable[[Envelope], None]
    rejected: int = 0
    accepted: int = 0

    @classmethod
    def issue(cls, authority: GroupKeyAuthority, group_id: int,
              peer_id: int, inner_handler) -> "GuardedNode":
        """Authorise the peer with the authority and build its guard."""
        key = authority.issue(group_id, peer_id)
        return cls(peer_id=peer_id, group_id=group_id, key=key,
                   inner_handler=inner_handler)

    def outgoing(self, payload: object) -> GuardedMessage:
        """Wrap a protocol payload for sending."""
        return guard_message(self.key, self.group_id, self.peer_id,
                             payload)

    def handle(self, envelope: Envelope) -> None:
        """Verify and unwrap one delivery; drop anything invalid."""
        message = envelope.payload
        if not isinstance(message, GuardedMessage):
            self.rejected += 1
            return
        try:
            verify_message(self.key, message)
        except SignatureError:
            self.rejected += 1
            return
        if message.sender != envelope.sender:
            # Token is valid for `message.sender`, but the transport
            # says someone else relayed it verbatim — fine for flooding
            # protocols; what matters is the payload's authenticity.
            pass
        self.accepted += 1
        self.inner_handler(replace(envelope, payload=message.payload))

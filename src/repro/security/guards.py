"""Per-group message guards (MACs over protocol messages).

A :class:`GroupKeyAuthority` — run by the rendezvous point or the
provider's server — issues one secret key per group to authorised
members.  :func:`guard_message` wraps any protocol payload with an
HMAC-SHA256 token over its canonical serialisation plus the sender and
group ids; :func:`verify_message` recomputes and compares in constant
time.  A peer that never received the group key cannot mint valid
advertisements or payloads, which closes the forged-announcement and
traffic-injection attacks EventGuard targets.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, fields, is_dataclass

from ..errors import ReproError


class SignatureError(ReproError):
    """A message guard failed verification."""


class GroupKeyAuthority:
    """Issues and remembers per-group secret keys."""

    def __init__(self, master_secret: bytes = b"groupcast-master") -> None:
        if not master_secret:
            raise SignatureError("master secret must be non-empty")
        self._master = master_secret
        self._issued: dict[int, set[int]] = {}

    def group_key(self, group_id: int) -> bytes:
        """The secret key of one group (derived from the master)."""
        return hmac.new(self._master, f"group-{group_id}".encode(),
                        hashlib.sha256).digest()

    def issue(self, group_id: int, peer_id: int) -> bytes:
        """Hand the group key to an authorised member and record it."""
        self._issued.setdefault(group_id, set()).add(peer_id)
        return self.group_key(group_id)

    def is_authorised(self, group_id: int, peer_id: int) -> bool:
        """True if the peer was issued the group key."""
        return peer_id in self._issued.get(group_id, ())

    def revoke(self, group_id: int, peer_id: int) -> None:
        """Forget an issuance (key rotation is the caller's job)."""
        self._issued.get(group_id, set()).discard(peer_id)


@dataclass(frozen=True)
class GuardedMessage:
    """A protocol payload plus its authentication token."""

    group_id: int
    sender: int
    payload: object
    token: bytes


def _canonical(payload: object) -> bytes:
    """Deterministic byte serialisation of a protocol message."""
    if is_dataclass(payload) and not isinstance(payload, type):
        parts = [type(payload).__name__]
        for field in fields(payload):
            parts.append(f"{field.name}={getattr(payload, field.name)!r}")
        return "|".join(parts).encode()
    return repr(payload).encode()


def guard_message(key: bytes, group_id: int, sender: int,
                  payload: object) -> GuardedMessage:
    """Wrap ``payload`` with an HMAC token under the group key."""
    if not key:
        raise SignatureError("empty group key")
    mac = hmac.new(key, digestmod=hashlib.sha256)
    mac.update(f"{group_id}|{sender}|".encode())
    mac.update(_canonical(payload))
    return GuardedMessage(group_id=group_id, sender=sender,
                          payload=payload, token=mac.digest())


def verify_message(key: bytes, message: GuardedMessage) -> None:
    """Raise :class:`SignatureError` unless the token is valid."""
    expected = guard_message(key, message.group_id, message.sender,
                             message.payload)
    if not hmac.compare_digest(expected.token, message.token):
        raise SignatureError(
            f"invalid token on message from {message.sender} "
            f"for group {message.group_id}")

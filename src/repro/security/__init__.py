"""Middleware-level security (EventGuard-style message guards).

The paper's conclusion plans to harden GroupCast with "EventGuard [26]
to enhance ... its middleware level security".  EventGuard protects
pub/sub middleware with per-operation tokens derived from keys the
event-service hands out at subscription time.  This package provides the
GroupCast analogue:

* :mod:`.guards` — a :class:`GroupKeyAuthority` run by the rendezvous
  point issues a per-group key; advertisements and payloads carry MACs
  over their immutable fields, so forged or tampered announcements are
  rejected before they can hijack subscriptions or inject traffic.
"""

from .guards import (
    GroupKeyAuthority,
    GuardedMessage,
    SignatureError,
    guard_message,
    verify_message,
)

__all__ = [
    "GroupKeyAuthority",
    "GuardedMessage",
    "SignatureError",
    "guard_message",
    "verify_message",
]

"""Equations 1-5: distance, capacity and combined selection preferences.

Given a candidate list ``L``, a peer ``p_i`` ranks every ``p_j in L``:

* *Distance Preference* (Eq. 1) favours nearby candidates,
  ``DP(L, j) = (1/d_j - alpha) / sum_k (1/d_k - alpha)`` over normalised
  distances ``d_j = D(i, j) / max_k D(i, k)`` (Eq. 2);
* *Capacity Preference* (Eq. 3) favours powerful candidates,
  ``CP(L, j) = (C_j - beta) / sum_k (C_k - beta)``;
* *Selection Preference* (Eq. 4/5) combines them,
  ``P(L, j) = gamma * CP + (1 - gamma) * DP``.

The parameters derive from the peer's resource level ``r`` (the fraction
of peers with less capacity): ``alpha = 1 - r``, ``beta = r`` and
``gamma = r ** (-ln r)``.  A weak peer (``r -> 0``) gets ``gamma -> 0`` and
a sharp distance bias; a powerful peer (``r -> 1``) gets ``gamma -> 1`` and
ranks almost purely by capacity.  All outputs are probability vectors.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import UtilityConfig
from ..errors import ConfigurationError

_DEFAULT_CONFIG = UtilityConfig()


def derive_parameters(
    resource_level: float, config: UtilityConfig = _DEFAULT_CONFIG
) -> tuple[float, float, float]:
    """Return ``(alpha, beta, gamma)`` for a peer with ``resource_level``."""
    r = config.clamp_resource_level(resource_level)
    return 1.0 - r, r, r ** (-math.log(r))


def normalized_distances(
    distances: np.ndarray, config: UtilityConfig = _DEFAULT_CONFIG
) -> np.ndarray:
    """Equation 2: distances scaled by the maximum over the candidate list.

    Distances are floored at ``config.min_distance_ms`` first, so the
    result lies in ``(0, 1]`` and its reciprocal is finite.
    """
    d = np.maximum(np.asarray(distances, dtype=float), config.min_distance_ms)
    if d.size == 0:
        return d
    return d / d.max()


def distance_preference(
    distances: np.ndarray,
    alpha: float,
    config: UtilityConfig = _DEFAULT_CONFIG,
) -> np.ndarray:
    """Equation 1: probability of choosing each candidate by proximity."""
    if alpha >= 1.0:
        raise ConfigurationError("alpha must be < 1")
    d = normalized_distances(distances, config)
    if d.size == 0:
        return d
    scores = 1.0 / d - alpha
    # 1/d >= 1 and alpha < 1 guarantee positive scores.
    return scores / scores.sum()


def capacity_preference(
    capacities: np.ndarray, beta: float
) -> np.ndarray:
    """Equation 3: probability of choosing each candidate by capacity."""
    if beta >= 1.0:
        raise ConfigurationError("beta must be < 1")
    c = np.asarray(capacities, dtype=float)
    if c.size == 0:
        return c
    if (c <= 0.0).any():
        raise ConfigurationError("capacities must be positive")
    scores = np.maximum(c - beta, 1e-12)
    return scores / scores.sum()


def selection_preference(
    capacities: np.ndarray,
    distances: np.ndarray,
    resource_level: float,
    config: UtilityConfig = _DEFAULT_CONFIG,
) -> np.ndarray:
    """Equation 5: the combined utility of every candidate in the list.

    ``capacities`` may equally be the occurrence frequencies of Equation 6,
    which substitute for capacity during overlay bootstrap.
    Returns a probability vector over the candidates.
    """
    c = np.asarray(capacities, dtype=float)
    d = np.asarray(distances, dtype=float)
    if c.shape != d.shape:
        raise ConfigurationError(
            "capacities and distances must have the same shape")
    if c.size == 0:
        return c
    alpha, beta, gamma = derive_parameters(resource_level, config)
    combined = (gamma * capacity_preference(c, beta)
                + (1.0 - gamma) * distance_preference(d, alpha, config))
    return combined / combined.sum()

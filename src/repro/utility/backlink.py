"""Back-link acceptance rule of the overlay protocol (Section 3.3).

After a joining peer ``p_i`` opens its outgoing connections, it asks each
chosen neighbor ``p_k`` for a *backward connection*.  ``p_k`` accepts with

``PB_k(Nbr(k), i) = rc_k^2 * rc_i + (1 - rc_k^2) * rd_i``

where, over ``p_k``'s current neighbor set:

* ``rc_k`` — capacity ranking of ``p_k`` itself (fraction of neighbors
  with capacity <= its own),
* ``rc_i`` — capacity ranking of the requester,
* ``rd_i`` — distance ranking of the requester (fraction of neighbors at
  least as far away as the requester).

A powerful ``p_k`` (high ``rc_k``) therefore weighs the requester's
capacity, while a weak ``p_k`` weighs proximity.  If the draw fails, the
back link is still accepted with a fallback probability ``p_b`` (0.5 in
the paper) that balances in- and out-degree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def back_link_acceptance_probability(
    own_capacity: float,
    requester_capacity: float,
    requester_distance_ms: float,
    neighbor_capacities: Sequence[float],
    neighbor_distances_ms: Sequence[float],
) -> float:
    """Probability that a peer accepts a backward connection request.

    ``neighbor_capacities`` / ``neighbor_distances_ms`` describe the
    accepting peer's current neighbors (distances measured from the
    accepting peer).  With no current neighbors the request is always
    accepted — a lonely peer has nothing to protect.
    """
    capacities = np.asarray(neighbor_capacities, dtype=float)
    distances = np.asarray(neighbor_distances_ms, dtype=float)
    if capacities.shape != distances.shape:
        raise ValueError(
            "neighbor capacities and distances must have the same length")
    n = capacities.size
    if n == 0:
        return 1.0
    rc_own = float((capacities <= own_capacity).mean())
    rc_req = float((capacities <= requester_capacity).mean())
    rd_req = float((distances >= requester_distance_ms).mean())
    weight = rc_own * rc_own
    return weight * rc_req + (1.0 - weight) * rd_req

"""Resource level estimation.

Section 3.1 defines the *resource level* ``r_i`` as the fraction of peers
in the overlay whose capacity is below that of peer ``p_i``, and notes it
"can be estimated by sampling a few peers that are known to p_i".  The
estimate drives the self-tuning of alpha, beta and gamma, so GroupCast
needs no global statistics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import UtilityConfig

_DEFAULT_CONFIG = UtilityConfig()


def estimate_resource_level(
    own_capacity: float,
    sampled_capacities: Sequence[float],
    config: UtilityConfig = _DEFAULT_CONFIG,
) -> float:
    """Estimate ``r_i`` from the capacities of sampled peers.

    Returns the fraction of samples with capacity strictly below
    ``own_capacity``, clamped into the open interval required by the
    preference formulae.  With no samples the peer assumes the median
    position (0.5).
    """
    if own_capacity <= 0.0:
        raise ValueError("own_capacity must be positive")
    samples = np.asarray(sampled_capacities, dtype=float)
    if samples.size == 0:
        return config.clamp_resource_level(0.5)
    fraction = float((samples < own_capacity).mean())
    return config.clamp_resource_level(fraction)

"""The GroupCast utility function (Section 3.1) and its derived rules."""

from .preference import (
    capacity_preference,
    derive_parameters,
    distance_preference,
    normalized_distances,
    selection_preference,
)
from .resource_level import estimate_resource_level
from .backlink import back_link_acceptance_probability

__all__ = [
    "capacity_preference",
    "derive_parameters",
    "distance_preference",
    "normalized_distances",
    "selection_preference",
    "estimate_resource_level",
    "back_link_acceptance_probability",
]

"""Dense array stores for peers and overlay adjacency.

Three containers, increasing in rigidity:

* :class:`PeerArrays` — per-peer attribute columns (capacity,
  coordinates, alive flag).  Rows are append-only: a freed row is never
  handed out again, so an index observed anywhere in the system can
  never silently start referring to a different peer.
* :class:`DynamicAdjacency` — mutable neighbor lists held in one pooled
  ``int64`` array with per-row ``(start, length, capacity)`` columns.
  Insertion order is preserved on add and remove, which is what lets
  the compatibility view replay object-layer iteration orders exactly.
* :class:`CSRGraph` — a frozen compressed-sparse-row snapshot for the
  vectorized protocol kernels (:mod:`repro.core.protocol`); built in
  one shot from edge arrays or compacted out of a live adjacency.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..errors import OverlayError

#: Pool slots freed by row relocation are tombstoned with this value.
_TOMBSTONE = np.int64(-1)


class PeerArrays:
    """Struct-of-arrays peer attribute table with alias-free rows."""

    __slots__ = ("capacity", "coords", "alive", "_count", "_dims")

    def __init__(self, dims: int = 2, initial: int = 16) -> None:
        if dims < 1:
            raise OverlayError("coordinate dimensionality must be >= 1")
        initial = max(int(initial), 1)
        self._dims = dims
        self._count = 0
        self.capacity = np.zeros(initial, dtype=np.float64)
        self.coords = np.zeros((initial, dims), dtype=np.float64)
        self.alive = np.zeros(initial, dtype=bool)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def dims(self) -> int:
        """Coordinate dimensionality."""
        return self._dims

    @property
    def live_count(self) -> int:
        """Number of rows whose peer is currently alive."""
        return int(np.count_nonzero(self.alive[: self._count]))

    def _grow_to(self, needed: int) -> None:
        current = self.capacity.shape[0]
        if needed <= current:
            return
        new = max(needed, current * 2)
        for name in ("capacity", "alive"):
            old = getattr(self, name)
            fresh = np.zeros(new, dtype=old.dtype)
            fresh[: self._count] = old[: self._count]
            setattr(self, name, fresh)
        coords = np.zeros((new, self._dims), dtype=np.float64)
        coords[: self._count] = self.coords[: self._count]
        self.coords = coords

    def add(self, capacity: float, coordinate: np.ndarray) -> int:
        """Append one peer; returns its permanent row index."""
        if capacity <= 0.0:
            raise OverlayError("capacity must be positive")
        index = self._count
        self._grow_to(index + 1)
        self.capacity[index] = capacity
        self.coords[index] = np.asarray(coordinate, dtype=np.float64)
        self.alive[index] = True
        self._count = index + 1
        return index

    def add_bulk(self, capacities: np.ndarray,
                 coordinates: np.ndarray) -> np.ndarray:
        """Append many peers at once; returns their row indices."""
        capacities = np.asarray(capacities, dtype=np.float64)
        coordinates = np.asarray(coordinates, dtype=np.float64)
        if capacities.ndim != 1 or coordinates.shape != (
                capacities.shape[0], self._dims):
            raise OverlayError("bulk shapes disagree")
        if (capacities <= 0.0).any():
            raise OverlayError("capacity must be positive")
        start = self._count
        count = capacities.shape[0]
        self._grow_to(start + count)
        self.capacity[start:start + count] = capacities
        self.coords[start:start + count] = coordinates
        self.alive[start:start + count] = True
        self._count = start + count
        return np.arange(start, start + count, dtype=np.int64)

    def mark_dead(self, index: int) -> None:
        """Retire a row; it is never reallocated to another peer."""
        if not 0 <= index < self._count:
            raise OverlayError(f"row {index} out of range")
        self.alive[index] = False

    def nbytes(self) -> int:
        """Total bytes held by the attribute columns."""
        return (self.capacity.nbytes + self.coords.nbytes
                + self.alive.nbytes)


class DynamicAdjacency:
    """Pooled, order-preserving neighbor lists.

    One flat ``int64`` pool holds every row's neighbor slice; per-row
    ``start``/``length``/``room`` columns describe the slices.  A row
    that outgrows its slice is relocated to the pool tail with doubled
    room (classic amortized growth); the vacated slot is tombstoned and
    reclaimed by :meth:`compact` (which :meth:`to_csr` performs
    implicitly into the snapshot).  Removal shifts the slice left, so
    both add and remove preserve relative neighbor order.
    """

    __slots__ = ("_pool", "_pool_used", "start", "length", "room",
                 "_rows", "_directed_entries")

    def __init__(self, initial_rows: int = 16,
                 initial_pool: int = 64) -> None:
        self._pool = np.full(max(int(initial_pool), 8), _TOMBSTONE,
                             dtype=np.int64)
        self._pool_used = 0
        rows = max(int(initial_rows), 1)
        self.start = np.zeros(rows, dtype=np.int64)
        self.length = np.zeros(rows, dtype=np.int32)
        self.room = np.zeros(rows, dtype=np.int32)
        self._rows = 0
        self._directed_entries = 0

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of adjacency rows (one per peer slot)."""
        return self._rows

    @property
    def edge_count(self) -> int:
        """Number of undirected edges (each stored twice)."""
        return self._directed_entries // 2

    def add_row(self) -> int:
        """Allocate one empty adjacency row; returns its index."""
        index = self._rows
        if index >= self.start.shape[0]:
            new = max(index + 1, self.start.shape[0] * 2)
            for name, dtype in (("start", np.int64), ("length", np.int32),
                                ("room", np.int32)):
                old = getattr(self, name)
                fresh = np.zeros(new, dtype=dtype)
                fresh[: index] = old[: index]
                setattr(self, name, fresh)
        self.start[index] = self._pool_used
        self.length[index] = 0
        self.room[index] = 0
        self._rows = index + 1
        return index

    def _pool_reserve(self, extra: int) -> None:
        needed = self._pool_used + extra
        if needed <= self._pool.shape[0]:
            return
        new = max(needed, self._pool.shape[0] * 2)
        fresh = np.full(new, _TOMBSTONE, dtype=np.int64)
        fresh[: self._pool_used] = self._pool[: self._pool_used]
        self._pool = fresh

    def neighbors(self, row: int) -> np.ndarray:
        """Read-only view of a row's neighbor slice (insertion order)."""
        self._require(row)
        start = self.start[row]
        view = self._pool[start: start + self.length[row]]
        view.flags.writeable = False
        return view

    def contains(self, row: int, value: int) -> bool:
        """True if ``value`` is in the row's neighbor list."""
        self._require(row)
        start = self.start[row]
        return bool(
            (self._pool[start: start + self.length[row]] == value).any())

    def add(self, row: int, value: int) -> bool:
        """Append ``value`` to the row; False if already present."""
        self._require(row)
        if self.contains(row, value):
            return False
        used, room = int(self.length[row]), int(self.room[row])
        if used == room:
            new_room = max(4, room * 2)
            self._pool_reserve(new_room)
            new_start = self._pool_used
            old_start = int(self.start[row])
            self._pool[new_start: new_start + used] = \
                self._pool[old_start: old_start + used]
            self._pool[old_start: old_start + used] = _TOMBSTONE
            self.start[row] = new_start
            self.room[row] = new_room
            self._pool_used = new_start + new_room
        self._pool[self.start[row] + used] = value
        self.length[row] = used + 1
        self._directed_entries += 1
        return True

    def remove(self, row: int, value: int) -> bool:
        """Remove ``value`` keeping the remaining order; False if absent."""
        self._require(row)
        start, used = int(self.start[row]), int(self.length[row])
        slot = self._pool[start: start + used]
        hits = np.nonzero(slot == value)[0]
        if hits.size == 0:
            return False
        position = int(hits[0])
        slot[position: used - 1] = slot[position + 1: used]
        slot[used - 1] = _TOMBSTONE
        self.length[row] = used - 1
        self._directed_entries -= 1
        return True

    def clear_row(self, row: int) -> np.ndarray:
        """Empty a row; returns a copy of its former neighbor list."""
        self._require(row)
        former = self.neighbors(row).copy()
        start = int(self.start[row])
        self._pool[start: start + int(self.length[row])] = _TOMBSTONE
        self._directed_entries -= int(self.length[row])
        self.length[row] = 0
        return former

    def degree(self, row: int) -> int:
        """Neighbor count of a row."""
        self._require(row)
        return int(self.length[row])

    def degrees(self) -> np.ndarray:
        """Neighbor count of every row."""
        return self.length[: self._rows].astype(np.int64)

    def compact(self) -> None:
        """Rewrite the pool with zero slack, reclaiming tombstones."""
        lengths = self.length[: self._rows].astype(np.int64)
        new_start = np.zeros(self._rows, dtype=np.int64)
        if self._rows:
            np.cumsum(lengths[:-1], out=new_start[1:])
        total = int(lengths.sum())
        fresh = np.full(max(total, 8), _TOMBSTONE, dtype=np.int64)
        for row in range(self._rows):
            used = int(lengths[row])
            old = int(self.start[row])
            fresh[new_start[row]: new_start[row] + used] = \
                self._pool[old: old + used]
        self._pool = fresh
        self.start[: self._rows] = new_start
        self.room[: self._rows] = self.length[: self._rows]
        self._pool_used = total

    def to_csr(self, index_dtype=np.int64) -> "CSRGraph":
        """Frozen CSR snapshot (neighbor order preserved)."""
        lengths = self.length[: self._rows].astype(np.int64)
        indptr = np.zeros(self._rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=index_dtype)
        for row in range(self._rows):
            used = int(lengths[row])
            start = int(self.start[row])
            indices[indptr[row]: indptr[row + 1]] = \
                self._pool[start: start + used]
        return CSRGraph(indptr, indices)

    def nbytes(self) -> int:
        """Total bytes held by the pool and the row columns."""
        return (self._pool.nbytes + self.start.nbytes
                + self.length.nbytes + self.room.nbytes)

    def _require(self, row: int) -> None:
        if not 0 <= row < self._rows:
            raise OverlayError(f"adjacency row {row} out of range")


class CSRGraph:
    """Immutable compressed-sparse-row adjacency snapshot."""

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise OverlayError("indptr and indices must be 1-D")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise OverlayError("indptr does not describe indices")
        self.indptr.flags.writeable = False
        self.indices.flags.writeable = False

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, node_count: int, sources: Sequence[int],
                   targets: Sequence[int],
                   index_dtype=np.int64) -> "CSRGraph":
        """Build an undirected CSR from edge endpoint arrays.

        Each undirected edge appears once in the inputs and twice in the
        snapshot; a node's neighbors come out in global edge-input order
        (stable counting sort), so identical edge arrays always yield an
        identical snapshot.
        """
        u = np.asarray(sources, dtype=np.int64)
        v = np.asarray(targets, dtype=np.int64)
        if u.shape != v.shape:
            raise OverlayError("edge endpoint arrays disagree in shape")
        if u.size and (u.min() < 0 or v.min() < 0
                       or max(u.max(), v.max()) >= node_count):
            raise OverlayError("edge endpoint out of range")
        if (u == v).any():
            raise OverlayError("self-links are not allowed")
        heads = np.concatenate([u, v])
        tails = np.concatenate([v, u])
        counts = np.bincount(heads, minlength=node_count)
        indptr = np.zeros(node_count + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        order = np.argsort(heads, kind="stable")
        indices = tails[order].astype(index_dtype)
        return cls(indptr, indices)

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of adjacency rows."""
        return self.indptr.shape[0] - 1

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    def neighbors(self, row: int) -> np.ndarray:
        """Read-only neighbor slice of one row."""
        return self.indices[self.indptr[row]: self.indptr[row + 1]]

    def degrees(self) -> np.ndarray:
        """Neighbor count of every row."""
        return np.diff(self.indptr)

    def edge_sources(self) -> np.ndarray:
        """Row owning each entry of ``indices`` (repeat-expanded)."""
        return np.repeat(np.arange(self.node_count, dtype=np.int64),
                         np.diff(self.indptr))

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(row, neighbor slice)`` pairs."""
        for row in range(self.node_count):
            yield row, self.neighbors(row)

    # ------------------------------------------------------------------
    def bfs_hops(self, roots: Sequence[int],
                 mask: np.ndarray | None = None) -> np.ndarray:
        """Vectorized multi-source BFS hop counts (-1 = unreachable).

        ``mask`` (bool per row) restricts traversal to True rows; roots
        outside the mask are ignored.
        """
        n = self.node_count
        hops = np.full(n, -1, dtype=np.int64)
        roots = np.asarray(roots, dtype=np.int64)
        if mask is not None:
            roots = roots[mask[roots]]
        if roots.size == 0:
            return hops
        hops[roots] = 0
        frontier = roots
        level = 0
        while frontier.size:
            level += 1
            counts = np.diff(self.indptr)[frontier]
            targets = self.indices[_concat_ranges(
                self.indptr[frontier], counts)]
            fresh = targets[hops[targets] < 0]
            if mask is not None:
                fresh = fresh[mask[fresh]]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            hops[fresh] = level
            frontier = fresh
        return hops

    def component_sizes(self,
                        mask: np.ndarray | None = None) -> list[int]:
        """Connected component sizes, largest first."""
        n = self.node_count
        seen = np.zeros(n, dtype=bool)
        if mask is not None:
            seen[~mask] = True
        sizes: list[int] = []
        while True:
            remaining = np.nonzero(~seen)[0]
            if remaining.size == 0:
                break
            hops = self.bfs_hops([int(remaining[0])], mask=mask)
            component = hops >= 0
            sizes.append(int(np.count_nonzero(component)))
            seen |= component
        sizes.sort(reverse=True)
        return sizes

    def nbytes(self) -> int:
        """Total bytes held by the snapshot."""
        return self.indptr.nbytes + self.indices.nbytes


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Vectorized ``concatenate([arange(s, s+c) for s, c in ...])``."""
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    nonzero = counts > 0
    starts, counts = starts[nonzero], counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # One cumsum over unit steps, with a corrective jump at each range
    # boundary, expands every (start, count) range without a Python loop.
    ends = np.cumsum(counts)
    flat = np.ones(total, dtype=np.int64)
    flat[0] = starts[0]
    flat[ends[:-1]] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(flat)

"""Combined struct-of-arrays store: peers + adjacency + tree columns.

:class:`SoAStore` is the single owner of the dense state: peer
attribute columns (:class:`~repro.core.arrays.PeerArrays`), mutable
overlay adjacency (:class:`~repro.core.arrays.DynamicAdjacency`) and
one :class:`TreeArrays` column group per communication group.  External
peer ids map to internal row indices through an insertion-ordered table;
rows are never reused (see the package docstring for the lifecycle
contract).
"""

from __future__ import annotations

import numpy as np

from ..errors import OverlayError, PeerNotFoundError, TreeError
from .arrays import CSRGraph, DynamicAdjacency, PeerArrays


class TreeArrays:
    """Per-group session/tree membership columns over store rows.

    ``parent[i]`` is the row index of ``i``'s upstream (-1 for the root
    and detached rows); ``on_tree``/``is_member``/``has_ad`` mirror the
    per-peer protocol flags of the object layer.  All methods are
    vectorized over the full column length.
    """

    __slots__ = ("parent", "on_tree", "is_member", "has_ad", "root")

    def __init__(self, rows: int, root: int = -1) -> None:
        self.parent = np.full(rows, -1, dtype=np.int64)
        self.on_tree = np.zeros(rows, dtype=bool)
        self.is_member = np.zeros(rows, dtype=bool)
        self.has_ad = np.zeros(rows, dtype=bool)
        self.root = root
        if root >= 0:
            self.on_tree[root] = True
            self.is_member[root] = True
            self.has_ad[root] = True

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Column length (store rows covered)."""
        return self.parent.shape[0]

    def grow_to(self, rows: int) -> None:
        """Extend the columns to cover ``rows`` store rows."""
        current = self.rows
        if rows <= current:
            return
        parent = np.full(rows, -1, dtype=np.int64)
        parent[:current] = self.parent
        self.parent = parent
        for name in ("on_tree", "is_member", "has_ad"):
            old = getattr(self, name)
            fresh = np.zeros(rows, dtype=bool)
            fresh[:current] = old
            setattr(self, name, fresh)

    # ------------------------------------------------------------------
    def attach(self, row: int, parent: int) -> None:
        """Put ``row`` on the tree under ``parent``."""
        if row == parent:
            raise TreeError("a node cannot be its own parent")
        self.parent[row] = parent
        self.on_tree[row] = True

    def detach_rows(self, rows: np.ndarray) -> None:
        """Take rows off the tree and clear their protocol flags."""
        self.parent[rows] = -1
        self.on_tree[rows] = False
        self.has_ad[rows] = False

    def child_counts(self) -> np.ndarray:
        """Tree fan-out per row (children whose parent pointer hits it)."""
        parents = self.parent[self.on_tree & (self.parent >= 0)]
        return np.bincount(parents, minlength=self.rows)

    def depths(self) -> np.ndarray:
        """Hop distance to the root per on-tree row; -1 off-tree or
        when the parent chain never reaches the root (dangling/cyclic).
        """
        depth = np.full(self.rows, -1, dtype=np.int64)
        if self.root < 0:
            return depth
        depth[self.root] = 0
        pending = self.on_tree & (depth < 0)
        # Each sweep resolves one more tree level; a chain that never
        # meets a resolved node (orphan loop) stays at -1.
        for _ in range(self.rows):
            if not pending.any():
                break
            rows = np.nonzero(pending)[0]
            parents = self.parent[rows]
            valid = parents >= 0
            rows, parents = rows[valid], parents[valid]
            ready = depth[parents] >= 0
            if not ready.any():
                break
            depth[rows[ready]] = depth[parents[ready]] + 1
            pending[rows[ready]] = False
            pending &= self.on_tree
        return depth

    def dangling_rows(self, alive: np.ndarray) -> np.ndarray:
        """On-tree rows whose upstream is dead, absent or off-tree."""
        rows = np.nonzero(self.on_tree)[0]
        rows = rows[rows != self.root]
        parents = self.parent[rows]
        no_parent = parents < 0
        bad = np.zeros(rows.shape[0], dtype=bool)
        bad |= no_parent
        with_parent = ~no_parent
        p = parents[with_parent]
        bad[with_parent] = (~alive[p]) | (~self.on_tree[p])
        return rows[bad]

    def repair_dangling(self, alive: np.ndarray) -> np.ndarray:
        """Detach every dangling branch until no dangling rows remain.

        Returns the rows that were detached.  After this call no
        on-tree row's parent chain passes through a dead or off-tree
        row — the array-level equivalent of the session layer's
        ``broken_upstream_peers`` sweep plus branch reset.
        """
        detached: list[np.ndarray] = []
        for _ in range(self.rows):
            dangling = self.dangling_rows(alive)
            if dangling.size == 0:
                break
            self.detach_rows(dangling)
            detached.append(dangling)
        if not detached:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(detached)

    def validate(self) -> None:
        """Assert the on-tree rows form one tree rooted at ``root``."""
        if self.root < 0:
            if self.on_tree.any():
                raise TreeError("on-tree rows but no root")
            return
        if not self.on_tree[self.root]:
            raise TreeError("root is off its own tree")
        if self.parent[self.root] != -1:
            raise TreeError("root must have no parent")
        depth = self.depths()
        broken = self.on_tree & (depth < 0)
        if broken.any():
            raise TreeError(
                f"{int(np.count_nonzero(broken))} on-tree rows do not "
                f"reach the root")

    def node_stress(self) -> float:
        """Average children count of non-leaf on-tree rows."""
        counts = self.child_counts()
        fanouts = counts[counts > 0]
        if fanouts.size == 0:
            return 0.0
        return float(fanouts.mean())

    def height(self) -> int:
        """Maximum on-tree depth."""
        depth = self.depths()
        on = depth[self.on_tree] if self.on_tree.any() else depth[:0]
        return int(on.max()) if on.size else 0

    def nbytes(self) -> int:
        """Total bytes held by the tree columns."""
        return (self.parent.nbytes + self.on_tree.nbytes
                + self.is_member.nbytes + self.has_ad.nbytes)


class SoAStore:
    """Peer rows, overlay adjacency and group trees in one place."""

    def __init__(self, dims: int = 2) -> None:
        self.peers = PeerArrays(dims=dims)
        self.adjacency = DynamicAdjacency()
        #: Insertion-ordered live table: external peer id -> row index.
        self._live: dict[int, int] = {}
        #: Full history: every id ever added -> its permanent row.
        self._row_of: dict[int, int] = {}
        #: Row index -> external peer id (grows with the peer columns).
        self._id_of: list[int] = []
        self.trees: dict[int, TreeArrays] = {}

    # ------------------------------------------------------------------
    # Peer lifecycle
    # ------------------------------------------------------------------
    def add_peer(self, peer_id: int, capacity: float,
                 coordinate: np.ndarray) -> int:
        """Insert a peer under a *fresh* row; returns the row index.

        Re-adding an id that previously left also takes a fresh row —
        the old row stays retired, so stale indices keep pointing at
        the departed incarnation (no aliasing, ever).
        """
        if peer_id in self._live:
            raise OverlayError(f"peer {peer_id} already present")
        row = self.peers.add(capacity, coordinate)
        adjacency_row = self.adjacency.add_row()
        assert adjacency_row == row
        self._live[peer_id] = row
        self._row_of[peer_id] = row
        self._id_of.append(peer_id)
        for tree in self.trees.values():
            tree.grow_to(row + 1)
        return row

    def remove_peer(self, peer_id: int) -> int:
        """Retire a peer's row and sever its links; returns the row."""
        row = self.row_of(peer_id)
        for neighbor in self.adjacency.clear_row(row):
            self.adjacency.remove(int(neighbor), row)
        self.peers.mark_dead(row)
        del self._live[peer_id]
        return row

    def row_of(self, peer_id: int) -> int:
        """Row index of a live peer."""
        row = self._live.get(peer_id)
        if row is None:
            raise PeerNotFoundError(
                f"peer {peer_id} is not in the overlay")
        return row

    def row_of_any(self, peer_id: int) -> int:
        """Permanent row of any peer ever added, live or departed.

        Protocol artifacts (advertisement receipts, tree parents) keep
        referring to a departed peer's row; this is the lookup they use.
        """
        row = self._row_of.get(peer_id)
        if row is None:
            raise PeerNotFoundError(
                f"peer {peer_id} was never in the overlay")
        return row

    def id_of(self, row: int) -> int:
        """External peer id that owns (or owned) a row."""
        return self._id_of[row]

    def id_table(self) -> list[int]:
        """Row-indexed external-id table (shared, do not mutate)."""
        return self._id_of

    def ids_of(self, rows: np.ndarray) -> list[int]:
        """External ids of many rows."""
        return [self._id_of[int(row)] for row in rows]

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._live

    @property
    def live_count(self) -> int:
        """Number of live peers."""
        return len(self._live)

    @property
    def row_count(self) -> int:
        """Total rows ever allocated (live + retired)."""
        return len(self.peers)

    def live_ids(self) -> list[int]:
        """Live peer ids in insertion order."""
        return list(self._live)

    def live_rows(self) -> np.ndarray:
        """Row indices of live peers in insertion order."""
        return np.fromiter(self._live.values(), dtype=np.int64,
                           count=len(self._live))

    def live_mask(self) -> np.ndarray:
        """Boolean row mask of live peers."""
        return self.peers.alive[: self.row_count].copy()

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def add_link(self, a: int, b: int) -> bool:
        """Add the undirected link ``a-b``; False if it existed."""
        if a == b:
            raise OverlayError("self-links are not allowed")
        row_a, row_b = self.row_of(a), self.row_of(b)
        if not self.adjacency.add(row_a, row_b):
            return False
        self.adjacency.add(row_b, row_a)
        return True

    def remove_link(self, a: int, b: int) -> bool:
        """Remove the undirected link ``a-b``; False if absent."""
        row_a, row_b = self.row_of(a), self.row_of(b)
        if not self.adjacency.remove(row_a, row_b):
            return False
        self.adjacency.remove(row_b, row_a)
        return True

    def neighbor_rows(self, peer_id: int) -> np.ndarray:
        """Neighbor row indices of a live peer (insertion order)."""
        return self.adjacency.neighbors(self.row_of(peer_id))

    # ------------------------------------------------------------------
    # Trees
    # ------------------------------------------------------------------
    def tree(self, group_id: int, root_peer: int | None = None
             ) -> TreeArrays:
        """The tree columns of a group (created on first touch)."""
        tree = self.trees.get(group_id)
        if tree is None:
            root = -1 if root_peer is None else self.row_of(root_peer)
            tree = TreeArrays(self.row_count, root=root)
            self.trees[group_id] = tree
        elif root_peer is not None and tree.root < 0:
            tree.root = self.row_of(root_peer)
            tree.on_tree[tree.root] = True
            tree.is_member[tree.root] = True
        return tree

    # ------------------------------------------------------------------
    def snapshot_csr(self) -> CSRGraph:
        """Frozen CSR of the current adjacency (all rows)."""
        return self.adjacency.to_csr()

    def nbytes(self) -> int:
        """Bytes held by all columns (peers + adjacency + trees)."""
        return (self.peers.nbytes() + self.adjacency.nbytes()
                + sum(tree.nbytes() for tree in self.trees.values()))

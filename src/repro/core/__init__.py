"""Struct-of-arrays simulator core for 10^5-10^6 peer scale.

The object layer (:class:`~repro.overlay.graph.OverlayNetwork`,
:class:`~repro.groupcast.spanning_tree.SpanningTree`, per-peer protocol
agents) tops out at a few thousand peers: every peer is a Python object
and every protocol step walks Python dicts.  This package holds the hot
state in dense numpy arrays instead, keyed by *stable peer indices*:

* :mod:`.arrays` — the raw stores: :class:`PeerArrays` (capacity,
  coordinates, liveness), :class:`DynamicAdjacency` (pooled, insertion-
  ordered neighbor lists) and the frozen :class:`CSRGraph` snapshot;
* :mod:`.store` — :class:`SoAStore` combining peers + adjacency with
  per-group :class:`TreeArrays` (parent/member/on-tree columns);
* :mod:`.overlay_view` — :class:`SoAOverlayNetwork`, a drop-in
  :class:`~repro.overlay.graph.OverlayNetwork` replacement backed by a
  store, so the existing protocol, fault and observability layers run
  unchanged (and bit-identically) over array state;
* :mod:`.protocol` — vectorized, epoch-batched protocol evaluation over
  a :class:`CSRGraph` (advertisement floods, subscription climbs, tree
  metrics) for runs far beyond what the object layer can reach;
* :mod:`.multigroup` — group-batched kernel variants over group-major
  2-D state (:class:`GroupBatch`), relaxing thousands of groups against
  one shared CSR per epoch pass, bit-identical per group to the
  single-group kernels;
* :mod:`.parallel` — the sharded executor: deterministic group shards
  over a shared-memory world, merged in shard order so results are
  bit-identical for any worker count.

Index lifecycle contract: a peer keeps its array row for the lifetime of
the store — join always allocates a *fresh* row and leave/crash only
clears the ``alive`` flag, so indices never alias across peers (pinned
by the Hypothesis suite in ``tests/test_soa_properties.py``).
"""

from .arrays import CSRGraph, DynamicAdjacency, PeerArrays
from .multigroup import (
    BatchFloodResult,
    GroupBatch,
    climb_subscriptions_batch,
    flood_advertisements_batch,
    group_delay_cells_batch,
    group_depths_batch,
    pack_members,
    tree_delays_batch,
)
from .overlay_view import SoAOverlayNetwork
from .parallel import (
    GroupPassResult,
    SharedWorld,
    merge_results,
    run_group_pass,
    run_group_pass_loop,
    run_sharded,
    shard_bounds,
)
from .protocol import (
    FloodResult,
    attach_searchers,
    climb_subscriptions,
    edge_latencies_from_coords,
    flood_advertisement,
    synthetic_power_law_csr,
    tree_delays,
)
from .store import SoAStore, TreeArrays

__all__ = [
    "CSRGraph",
    "DynamicAdjacency",
    "PeerArrays",
    "SoAStore",
    "TreeArrays",
    "SoAOverlayNetwork",
    "FloodResult",
    "flood_advertisement",
    "climb_subscriptions",
    "attach_searchers",
    "tree_delays",
    "edge_latencies_from_coords",
    "synthetic_power_law_csr",
    "GroupBatch",
    "BatchFloodResult",
    "pack_members",
    "flood_advertisements_batch",
    "climb_subscriptions_batch",
    "tree_delays_batch",
    "group_depths_batch",
    "group_delay_cells_batch",
    "GroupPassResult",
    "SharedWorld",
    "merge_results",
    "shard_bounds",
    "run_group_pass",
    "run_group_pass_loop",
    "run_sharded",
]

"""Object-compatible overlay view over the struct-of-arrays store.

:class:`SoAOverlayNetwork` exposes the exact
:class:`~repro.overlay.graph.OverlayNetwork` API — vertices, links,
neighbor queries and the whole-graph statistics — while every byte of
state lives in a :class:`~repro.core.store.SoAStore`.  The protocols,
fault harness and observability layers run over it unchanged.

Equivalence contract (pinned by ``tests/test_soa_equivalence.py``):
given a view snapshotted with :meth:`from_overlay`, every observable —
``peer_ids()`` order, ``neighbors()`` order, statistic values, and the
rng draws consumed by sampled statistics — is identical to the source
object overlay, so same-seed protocol runs over either backend produce
bit-identical trace digests.  Neighbor *order* is the load-bearing
part: the object layer iterates Python sets, whose order feeds the
SSA sampling rng and the message schedule, so the snapshot captures the
set order and the pooled adjacency preserves it under removals.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

import numpy as np

from ..errors import OverlayError
from ..overlay.graph import OverlayNetwork
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource
from .arrays import CSRGraph
from .store import SoAStore


class SoAOverlayNetwork:
    """Array-backed drop-in for :class:`OverlayNetwork`."""

    def __init__(self, store: SoAStore | None = None,
                 dims: int = 2) -> None:
        self.store = store if store is not None else SoAStore(dims=dims)
        #: Lazily materialized PeerInfo per row (coords never mutate
        #: after insertion, so a cached info stays valid for the row's
        #: lifetime).
        self._infos: dict[int, PeerInfo] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_overlay(cls, overlay: OverlayNetwork) -> "SoAOverlayNetwork":
        """Snapshot an object overlay, preserving every iteration order.

        Peers are added in ``peer_ids()`` order and each row's neighbor
        slice is written in the exact order ``overlay.neighbors()``
        reported, so the view replays the object layer's behavior
        bit-for-bit from the snapshot point onward.
        """
        ids = overlay.peer_ids()
        dims = 2
        if ids:
            dims = int(np.asarray(overlay.peer(ids[0]).coordinate).size)
        view = cls(dims=dims)
        store = view.store
        for peer_id in ids:
            info = overlay.peer(peer_id)
            store.add_peer(peer_id, info.capacity, info.coordinate)
        adjacency = store.adjacency
        for peer_id in ids:
            row = store.row_of(peer_id)
            for neighbor in overlay.neighbors(peer_id):
                adjacency.add(row, store.row_of(neighbor))
        return view

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def add_peer(self, info: PeerInfo) -> None:
        """Insert an isolated peer (fresh row, never a reused one)."""
        row = self.store.add_peer(info.peer_id, info.capacity,
                                  info.coordinate)
        self._infos[row] = info

    def remove_peer(self, peer_id: int) -> None:
        """Remove a peer and all its links (its row is retired)."""
        self.store.remove_peer(peer_id)

    def peer(self, peer_id: int) -> PeerInfo:
        """Metadata of a peer."""
        row = self.store.row_of(peer_id)
        info = self._infos.get(row)
        if info is None:
            peers = self.store.peers
            info = PeerInfo.from_arrays(peer_id, row, peers.capacity,
                                        peers.coords)
            self._infos[row] = info
        return info

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self.store

    def __len__(self) -> int:
        return self.store.live_count

    @property
    def peer_count(self) -> int:
        """Number of peers currently in the overlay."""
        return self.store.live_count

    def peer_ids(self) -> list[int]:
        """All peer identifiers (insertion order)."""
        return self.store.live_ids()

    def peers(self) -> Iterator[PeerInfo]:
        """Iterate over peer metadata."""
        for peer_id in self.store.live_ids():
            yield self.peer(peer_id)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_link(self, a: int, b: int) -> bool:
        """Add the undirected link ``a-b``; return False if it existed."""
        return self.store.add_link(a, b)

    def remove_link(self, a: int, b: int) -> bool:
        """Remove the link ``a-b``; return False if it was absent."""
        return self.store.remove_link(a, b)

    def has_link(self, a: int, b: int) -> bool:
        """True if the link ``a-b`` exists."""
        row_a, row_b = self.store.row_of(a), self.store.row_of(b)
        return self.store.adjacency.contains(row_a, row_b)

    def neighbors(self, peer_id: int) -> list[int]:
        """Neighbor ids of a peer (copy; safe to mutate)."""
        rows = self.store.neighbor_rows(peer_id)
        return self.store.ids_of(rows)

    def degree(self, peer_id: int) -> int:
        """Number of overlay links of a peer."""
        return self.store.adjacency.degree(self.store.row_of(peer_id))

    @property
    def edge_count(self) -> int:
        """Number of undirected overlay links."""
        return self.store.adjacency.edge_count

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected links as ``(low, high)`` pairs."""
        for peer_id in self.store.live_ids():
            for neighbor in self.neighbors(peer_id):
                if peer_id < neighbor:
                    yield (peer_id, neighbor)

    # ------------------------------------------------------------------
    # Whole-graph statistics (evaluation only)
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Degree of every peer, in ``peer_ids()`` order."""
        rows = self.store.live_rows()
        return self.store.adjacency.length[rows].astype(np.int64)

    def degree_distribution(self) -> tuple[np.ndarray, np.ndarray]:
        """``(degree values, peer counts)`` — the data behind Figures 7-8."""
        degrees = self.degrees()
        if degrees.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        values, counts = np.unique(degrees, return_counts=True)
        return values, counts

    def clustering_coefficient(
        self, rng: RandomSource | None = None, sample: int | None = None
    ) -> float:
        """Average local clustering coefficient.

        Consumes exactly the rng draws of the object implementation
        (one ``choice`` when sampling) and accumulates in the same peer
        order, so the result is bit-identical.
        """
        ids = self.peer_ids()
        if not ids:
            return 0.0
        if sample is not None and sample < len(ids):
            if rng is None:
                raise OverlayError("sampled clustering needs an rng")
            ids = [ids[i] for i in rng.choice(len(ids), size=sample,
                                              replace=False)]
        adjacency = self.store.adjacency
        total = 0.0
        for peer in ids:
            row = self.store.row_of(peer)
            nbrs = adjacency.neighbors(row)
            k = int(nbrs.shape[0])
            if k < 2:
                continue
            links = 0
            for i in range(k):
                # isin over the remaining suffix counts each triangle
                # corner once, matching the object nested loop.
                links += int(np.isin(
                    nbrs[i + 1:], adjacency.neighbors(int(nbrs[i]))
                ).sum())
            total += 2.0 * links / (k * (k - 1))
        return total / len(ids)

    def connected_component_sizes(self) -> list[int]:
        """Sizes of connected components, largest first."""
        csr = self.store.snapshot_csr()
        mask = self.store.live_mask()
        return csr.component_sizes(mask=mask)

    def is_connected(self) -> bool:
        """True if every peer can reach every other peer."""
        if self.store.live_count == 0:
            return True
        return self.connected_component_sizes()[0] == self.store.live_count

    def hop_distances_from(self, start: int) -> dict[int, int]:
        """BFS hop counts from ``start`` to every reachable peer."""
        row = self.store.row_of(start)
        adjacency = self.store.adjacency
        dist = {row: 0}
        queue = deque([row])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency.neighbors(node):
                neighbor = int(neighbor)
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        id_of = self.store.id_of
        return {id_of(node): hops for node, hops in dist.items()}

    def estimated_diameter(self, rng: RandomSource, samples: int = 16) -> int:
        """Max eccentricity over a random sample of sources (lower bound)."""
        ids = self.peer_ids()
        if len(ids) < 2:
            return 0
        picks = rng.choice(len(ids), size=min(samples, len(ids)),
                           replace=False)
        best = 0
        for i in picks:
            dist = self.hop_distances_from(ids[int(i)])
            best = max(best, max(dist.values()))
        return best

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (capacity as node attribute)."""
        import networkx as nx

        graph = nx.Graph()
        for peer_id in self.peer_ids():
            graph.add_node(peer_id, capacity=self.peer(peer_id).capacity)
        graph.add_edges_from(self.edges())
        return graph

    # ------------------------------------------------------------------
    # Array interop (scale path)
    # ------------------------------------------------------------------
    def csr(self) -> CSRGraph:
        """Frozen CSR snapshot of the adjacency (row-indexed)."""
        return self.store.snapshot_csr()

    def nbytes(self) -> int:
        """Bytes held by the backing store."""
        return self.store.nbytes()

"""Sharded multi-group epoch execution over shared-memory world state.

One overlay snapshot serves every group, so the only thing a worker
needs besides its shard's group slice is the read-only world: CSR
adjacency, per-edge latencies, peer coordinates/capacities and the
packed group rosters.  :class:`SharedWorld` publishes those arrays once
through :mod:`multiprocessing.shared_memory`; workers attach zero-copy,
read-only views, run the batched kernels of
:mod:`repro.core.multigroup` over their shard, and ship back only the
small per-group metric columns.

Determinism contract: shards are deterministic contiguous slices of the
group order, per-group results are bit-identical for any batch
composition (see :mod:`repro.core.multigroup`), and the parent merges
shard results **in shard order** — so metrics and the merged digest are
identical for any ``shards``/``jobs`` combination, including the inline
``jobs=1`` path (the same submission-order convention as
:func:`repro.experiments.parallel.run_points`, whose fork context the
pool reuses).
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..errors import GroupError
from ..sim.random import spawn_rng
from ..experiments.parallel import pool_context
from .arrays import CSRGraph
from .multigroup import (
    climb_subscriptions_batch,
    flood_advertisements_batch,
    group_delay_cells_batch,
    group_depths_batch,
    tree_delays_batch,
)
from .protocol import climb_subscriptions, flood_advertisement, tree_delays

#: Arrays a :class:`SharedWorld` publishes, in a fixed order so the
#: picklable handle stays a plain tuple of (name, shape, dtype) specs.
_WORLD_FIELDS = ("indptr", "indices", "latency", "coords", "capacities",
                 "roots", "member_rows", "member_indptr")


@dataclass(frozen=True)
class GroupPassResult:
    """Per-group outcome columns of one multi-group epoch pass.

    ``digests`` holds one 32-byte SHA-256 per group over that group's
    dense result rows (arrival / upstream / tree parent / delays), so
    any two executions that agree per group agree on
    :meth:`merged_digest` regardless of how the groups were sharded.

    The dimensional-telemetry columns ride along: ``depth`` is the
    per-group tree depth (always computed — one segmented max), and
    ``delay_cells`` holds one log-scale sketch row per group
    (``(n_groups, layout.cells)`` int64) when the pass ran with a
    ``dims_layout``, else a ``(n_groups, 0)`` placeholder.  Both merge
    by concatenation in shard order like every other column, and the
    sketch rows merge across epochs/workers by integer addition, so
    per-tenant percentiles are bit-identical for any shard or worker
    count.
    """

    receipts: np.ndarray
    tree_nodes: np.ndarray
    member_counts: np.ndarray
    members_on_tree: np.ndarray
    delay_sum_ms: np.ndarray
    delay_max_ms: np.ndarray
    digests: np.ndarray
    depth: np.ndarray
    delay_cells: np.ndarray

    @property
    def n_groups(self) -> int:
        """Number of groups covered."""
        return self.receipts.shape[0]

    def merged_digest(self) -> str:
        """SHA-256 over the per-group digests in group order."""
        return hashlib.sha256(self.digests.tobytes()).hexdigest()

    def metrics(self) -> dict:
        """Aggregate summary used by benchmarks and CI gates."""
        finite = np.isfinite(self.delay_max_ms)
        return {
            "groups": int(self.n_groups),
            "receipts_total": int(self.receipts.sum()),
            "tree_nodes_total": int(self.tree_nodes.sum()),
            "members_total": int(self.member_counts.sum()),
            "members_on_tree_total": int(self.members_on_tree.sum()),
            "delay_sum_ms": float(self.delay_sum_ms[finite].sum()),
            "delay_max_ms": float(
                self.delay_max_ms[finite].max()) if finite.any() else 0.0,
            "depth_max": int(self.depth.max()) if self.depth.size else 0,
            "digest": self.merged_digest(),
        }


def merge_results(parts: list[GroupPassResult]) -> GroupPassResult:
    """Concatenate shard results in shard order."""
    if not parts:
        raise GroupError("nothing to merge")
    return GroupPassResult(*(
        np.concatenate([getattr(part, field) for part in parts])
        for field in GroupPassResult.__dataclass_fields__))


def shard_bounds(n_groups: int, shards: int) -> list[tuple[int, int]]:
    """Deterministic contiguous group slices, balanced to within one."""
    if n_groups < 1:
        raise GroupError("need at least one group")
    shards = max(1, min(int(shards), n_groups))
    edges = np.linspace(0, n_groups, shards + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(shards)]


def _group_digests(arrival: np.ndarray, upstream: np.ndarray,
                   parent: np.ndarray, delays: np.ndarray) -> np.ndarray:
    """One 32-byte SHA-256 per group over its dense result rows."""
    out = np.empty((arrival.shape[0], 32), dtype=np.uint8)
    for g in range(arrival.shape[0]):
        h = hashlib.sha256()
        h.update(arrival[g].tobytes())
        h.update(upstream[g].tobytes())
        h.update(parent[g].tobytes())
        h.update(delays[g].tobytes())
        out[g] = np.frombuffer(h.digest(), dtype=np.uint8)
    return out


def _pass_metrics(arrival, upstream, parent, on_tree, is_member, delays,
                  member_indptr, hops, dims_layout) -> GroupPassResult:
    member_mask = is_member & on_tree
    finite = member_mask & np.isfinite(delays)
    delay_sum = np.where(finite, delays, 0.0).sum(axis=1)
    delay_max = np.where(
        finite.any(axis=1),
        np.where(finite, delays, -np.inf).max(axis=1),
        np.inf)
    if dims_layout is not None:
        delay_cells = group_delay_cells_batch(delays, member_mask,
                                              dims_layout)
    else:
        delay_cells = np.zeros((arrival.shape[0], 0), dtype=np.int64)
    return GroupPassResult(
        receipts=np.count_nonzero(np.isfinite(arrival), axis=1),
        tree_nodes=on_tree.sum(axis=1).astype(np.int64),
        member_counts=np.diff(member_indptr).astype(np.int64),
        members_on_tree=member_mask.sum(axis=1).astype(np.int64),
        delay_sum_ms=delay_sum,
        delay_max_ms=delay_max,
        digests=_group_digests(arrival, upstream, parent, delays),
        depth=group_depths_batch(hops, on_tree),
        delay_cells=delay_cells)


def run_group_pass(csr: CSRGraph, latency: np.ndarray,
                   coords: np.ndarray, roots: np.ndarray,
                   member_rows: np.ndarray, member_indptr: np.ndarray,
                   *, ttl: int, scheme: str = "nssa",
                   capacities: np.ndarray | None = None,
                   ssa_seed: int | None = None,
                   group_offset: int = 0,
                   epoch_ms: float | None = None,
                   dims_layout=None) -> GroupPassResult:
    """One batched flood + climb + delay pass over a slice of groups.

    ``group_offset`` is the slice's position in the *global* group
    order; SSA generators are spawned per global group index so results
    do not depend on how the group set was sharded.  ``dims_layout``
    (a :class:`repro.obs.dims.SketchLayout`, duck-typed) switches on
    the per-group delay sketch columns; it never touches the dense
    result rows, so per-group digests are bit-identical with dims on
    or off.
    """
    rngs = None
    if scheme == "ssa":
        if ssa_seed is None:
            raise GroupError("ssa passes need ssa_seed")
        rngs = [spawn_rng(ssa_seed, "multigroup", group_offset + g)
                for g in range(roots.shape[0])]
    flood = flood_advertisements_batch(
        csr, latency, roots, ttl, scheme, capacities=capacities,
        rngs=rngs, epoch_ms=epoch_ms)
    on_tree, is_member = climb_subscriptions_batch(
        flood, member_rows, member_indptr)
    parent = np.where(on_tree, flood.upstream, -1)
    delays = tree_delays_batch(parent, on_tree, coords=coords,
                               roots=roots)
    return _pass_metrics(flood.arrival, flood.upstream, parent, on_tree,
                         is_member, delays, member_indptr, flood.hops,
                         dims_layout)


def run_group_pass_loop(csr: CSRGraph, latency: np.ndarray,
                        coords: np.ndarray, roots: np.ndarray,
                        member_rows: np.ndarray,
                        member_indptr: np.ndarray, *, ttl: int,
                        scheme: str = "nssa",
                        capacities: np.ndarray | None = None,
                        ssa_seed: int | None = None,
                        group_offset: int = 0,
                        epoch_ms: float | None = None,
                        dims_layout=None) -> GroupPassResult:
    """Differential reference: the same pass as a per-group kernel loop.

    Calls the single-group PR-6 kernels once per group; the batched
    path must reproduce this bit for bit (and the benchmark measures
    its speedup against it).
    """
    n_groups = roots.shape[0]
    n = csr.node_count
    arrival = np.empty((n_groups, n))
    upstream = np.empty((n_groups, n), dtype=np.int64)
    parent = np.empty((n_groups, n), dtype=np.int64)
    on_tree = np.empty((n_groups, n), dtype=bool)
    is_member = np.empty((n_groups, n), dtype=bool)
    delays = np.empty((n_groups, n))
    hops = np.empty((n_groups, n), dtype=np.int64)
    for g in range(n_groups):
        rng = None
        if scheme == "ssa":
            if ssa_seed is None:
                raise GroupError("ssa passes need ssa_seed")
            rng = spawn_rng(ssa_seed, "multigroup", group_offset + g)
        flood = flood_advertisement(
            csr, latency, int(roots[g]), ttl, scheme,
            capacities=capacities, rng=rng, epoch_ms=epoch_ms)
        members = member_rows[member_indptr[g]:member_indptr[g + 1]]
        tree_mask, member_mask = climb_subscriptions(flood, members)
        tree_parent = np.where(tree_mask, flood.upstream, -1)
        arrival[g] = flood.arrival
        upstream[g] = flood.upstream
        parent[g] = tree_parent
        on_tree[g] = tree_mask
        is_member[g] = member_mask
        hops[g] = flood.hops
        delays[g] = tree_delays(tree_parent, tree_mask, coords=coords,
                                root=int(roots[g]))
    return _pass_metrics(arrival, upstream, parent, on_tree, is_member,
                         delays, member_indptr, hops, dims_layout)


# ----------------------------------------------------------------------
# Shared-memory world publication
# ----------------------------------------------------------------------
class SharedWorld:
    """Read-only world arrays published once for every worker.

    Lifecycle: the parent calls :meth:`publish` (copies each array into
    its own shared-memory segment and returns a picklable handle),
    workers call :meth:`attach` (zero-copy, read-only views; each
    worker unregisters the segments from its own resource tracker so
    only the parent unlinks), and the parent calls :meth:`close` after
    the pool has drained.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.handle: tuple | None = None

    def publish(self, **arrays: np.ndarray) -> tuple:
        """Copy arrays into shared memory; returns the attach handle."""
        if self.handle is not None:
            raise GroupError("world already published")
        specs = []
        for field in _WORLD_FIELDS:
            array = np.ascontiguousarray(arrays[field])
            segment = shared_memory.SharedMemory(
                create=True, size=max(array.nbytes, 1))
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=segment.buf)
            view[...] = array
            self._segments.append(segment)
            specs.append((segment.name, array.shape, array.dtype.str))
        self.handle = tuple(specs)
        return self.handle

    @staticmethod
    def attach(handle: tuple, unregister: bool = False
               ) -> tuple[dict, list]:
        """Zero-copy read-only views of a published world.

        Returns ``(arrays, segments)``; the caller must keep the
        segments referenced while the views are in use and close them
        afterwards (:func:`_detach`).  ``unregister`` must be True in
        workers started via *spawn*: there, attaching registers the
        borrowed segment with the worker's own resource tracker, which
        would unlink it (and warn) at worker exit.  Fork workers share
        the parent's tracker, where re-registration is idempotent and
        unregistering would strip the parent's own claim.
        """
        arrays: dict[str, np.ndarray] = {}
        segments = []
        for field, (name, shape, dtype) in zip(_WORLD_FIELDS, handle):
            segment = shared_memory.SharedMemory(name=name)
            if unregister:
                try:
                    resource_tracker.unregister(segment._name,
                                                "shared_memory")
                except Exception:
                    pass
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=segment.buf)
            view.flags.writeable = False
            arrays[field] = view
            segments.append(segment)
        return arrays, segments

    def close(self) -> None:
        """Release and unlink every published segment (parent only)."""
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments = []
        self.handle = None


def _detach(segments: list) -> None:
    for segment in segments:
        segment.close()


def _run_shard(payload: tuple) -> GroupPassResult:
    """Worker body: attach the world, run one shard's group slice."""
    handle, lo, hi, params = payload
    arrays, segments = SharedWorld.attach(
        handle, unregister=params["unregister"])
    try:
        csr = CSRGraph(arrays["indptr"], arrays["indices"])
        indptr = arrays["member_indptr"]
        rows = arrays["member_rows"][indptr[lo]:indptr[hi]]
        capacities = arrays["capacities"]
        return run_group_pass(
            csr, arrays["latency"], arrays["coords"],
            arrays["roots"][lo:hi], np.ascontiguousarray(rows),
            np.ascontiguousarray(indptr[lo:hi + 1] - indptr[lo]),
            ttl=params["ttl"], scheme=params["scheme"],
            capacities=capacities if params["scheme"] == "ssa" else None,
            ssa_seed=params["ssa_seed"], group_offset=lo,
            epoch_ms=params["epoch_ms"],
            dims_layout=params["dims_layout"])
    finally:
        _detach(segments)


def run_sharded(csr: CSRGraph, latency: np.ndarray, coords: np.ndarray,
                roots: np.ndarray, member_rows: np.ndarray,
                member_indptr: np.ndarray, *, ttl: int,
                scheme: str = "nssa",
                capacities: np.ndarray | None = None,
                ssa_seed: int | None = None,
                epoch_ms: float | None = None, shards: int = 4,
                jobs: int = 1, dims_layout=None) -> GroupPassResult:
    """Run a multi-group pass over deterministic group shards.

    ``jobs <= 1`` runs the shards inline (no pool, no shared memory);
    otherwise the world is published once and the shards fan out over a
    ``ProcessPoolExecutor``.  Results merge in shard order, so the
    output is bit-identical for every ``shards``/``jobs`` combination.
    """
    roots = np.asarray(roots, dtype=np.int64)
    member_rows = np.asarray(member_rows, dtype=np.int64)
    member_indptr = np.asarray(member_indptr, dtype=np.int64)
    bounds = shard_bounds(roots.shape[0], shards)
    params = {"ttl": int(ttl), "scheme": scheme, "ssa_seed": ssa_seed,
              "epoch_ms": epoch_ms, "dims_layout": dims_layout,
              "unregister": pool_context().get_start_method() != "fork"}
    if scheme == "ssa" and capacities is None:
        raise GroupError("ssa passes need capacities")
    jobs = max(1, int(jobs))
    if jobs == 1 or len(bounds) == 1:
        parts = []
        for lo, hi in bounds:
            parts.append(run_group_pass(
                csr, latency, coords, roots[lo:hi],
                member_rows[member_indptr[lo]:member_indptr[hi]],
                member_indptr[lo:hi + 1] - member_indptr[lo],
                ttl=int(ttl), scheme=scheme, capacities=capacities,
                ssa_seed=ssa_seed, group_offset=lo, epoch_ms=epoch_ms,
                dims_layout=dims_layout))
        return merge_results(parts)
    world = SharedWorld()
    try:
        handle = world.publish(
            indptr=csr.indptr, indices=csr.indices, latency=latency,
            coords=coords,
            capacities=(capacities if capacities is not None
                        else np.ones(csr.node_count)),
            roots=roots, member_rows=member_rows,
            member_indptr=member_indptr)
        payloads = [(handle, lo, hi, params) for lo, hi in bounds]
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(payloads)),
                mp_context=pool_context()) as pool:
            parts = list(pool.map(_run_shard, payloads))
    finally:
        world.close()
    return merge_results(parts)

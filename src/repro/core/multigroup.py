"""Group-batched protocol kernels: many groups, one kernel pass.

The PR-6 kernels (:mod:`repro.core.protocol`) vectorize *within* one
group — running thousands of groups still means a Python loop of kernel
calls, each of which re-walks the shared overlay snapshot.  This module
stacks the per-group state into group-major 2-D arrays (``(n_groups,
n_rows)`` with a shared row space) and relaxes **all groups against one
frozen CSR per epoch**: each global bucket pass gathers the frontier of
every group at once, so the per-edge work amortizes across the whole
batch and the pass count is the *maximum* over groups instead of the
sum.

Determinism contract (pinned by ``tests/test_multigroup.py``): every
per-group row of every output array is **bit-identical** to the value
the single-group kernel produces for that group alone.  The argument:

* all mutable state is indexed ``(group, row)`` and every update writes
  only its own group's row, so group trajectories never interact;
* epoch buckets are cells of the global grid (multiples of
  ``epoch_ms`` from zero) — the same grid every single-group bucket
  boundary lands on — so batching changes *when* a group's cell is
  processed but never which arrivals share a group's bucket;
* duplicate-target resolution sorts on the flattened ``group * n + row``
  key with the same stable lexsort as the single-group kernel, so the
  within-group candidate order (and hence the tie-break) is unchanged.

Consequently results are independent of batch composition — any
sharding of the group set, merged in group order, reproduces the
sequential per-group run bit for bit (the property the sharded executor
in :mod:`repro.core.parallel` builds on).

For SSA, forwarding subsets are sampled with one independent generator
per group (callers pass ``rngs``); the per-group draw sequence equals
the single-group kernel's under the same generator state, so SSA floods
keep the bit-identity contract group by group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import AnnouncementConfig, UtilityConfig
from ..errors import GroupError
from ..sim.random import RandomSource
from .arrays import CSRGraph, _concat_ranges
from .protocol import _sample_ssa_edges
from .store import TreeArrays

_DEFAULT_ANNOUNCEMENT = AnnouncementConfig()

#: Width of the flood's near-horizon window, in epochs: pending
#: coordinates due inside the window stay on the per-pass near list,
#: later ones wait in far chunks until the clock approaches.  Bigger
#: windows mean fewer far rescans but a wider near list per pass.
_FAR_EPOCHS = 8.0


def _merge_pending(work: np.ndarray, work_arrival: np.ndarray,
                   keys: np.ndarray, values: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Merge sorted unique (keys, values) into the sorted worklist.

    ``side="right"`` lands each incoming key just after its stale twin
    (if present), so keeping the last entry of every equal-key run both
    dedups and refreshes the cached arrival in one pass.
    """
    slot = (np.searchsorted(work, keys, side="right")
            + np.arange(keys.shape[0]))
    total = work.shape[0] + keys.shape[0]
    incoming = np.zeros(total, dtype=bool)
    incoming[slot] = True
    merged_keys = np.empty(total, dtype=np.int64)
    merged_keys[slot] = keys
    merged_keys[~incoming] = work
    merged_values = np.empty(total)
    merged_values[slot] = values
    merged_values[~incoming] = work_arrival
    last = np.empty(total, dtype=bool)
    last[-1] = True
    np.not_equal(merged_keys[1:], merged_keys[:-1], out=last[:-1])
    return merged_keys[last], merged_values[last]


class GroupBatch:
    """Group-major tree columns for a batch of groups.

    The 2-D counterpart of :class:`~repro.core.store.TreeArrays`: row
    ``g`` of every column is group ``g``'s per-store-row state, all
    groups sharing one row space (one overlay snapshot).
    """

    __slots__ = ("parent", "on_tree", "is_member", "has_ad", "roots")

    def __init__(self, n_groups: int, rows: int,
                 roots: np.ndarray | None = None) -> None:
        if n_groups < 1 or rows < 1:
            raise GroupError("need at least one group and one row")
        self.parent = np.full((n_groups, rows), -1, dtype=np.int64)
        self.on_tree = np.zeros((n_groups, rows), dtype=bool)
        self.is_member = np.zeros((n_groups, rows), dtype=bool)
        self.has_ad = np.zeros((n_groups, rows), dtype=bool)
        if roots is None:
            self.roots = np.full(n_groups, -1, dtype=np.int64)
        else:
            self.roots = np.asarray(roots, dtype=np.int64).copy()
            if self.roots.shape != (n_groups,):
                raise GroupError("need one root per group")
            if ((self.roots < 0) | (self.roots >= rows)).any():
                raise GroupError("root row out of range")
            g = np.arange(n_groups)
            self.on_tree[g, self.roots] = True
            self.is_member[g, self.roots] = True
            self.has_ad[g, self.roots] = True

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of stacked groups."""
        return self.parent.shape[0]

    @property
    def rows(self) -> int:
        """Shared row-space length."""
        return self.parent.shape[1]

    @classmethod
    def from_trees(cls, trees: Sequence[TreeArrays]) -> "GroupBatch":
        """Stack per-group :class:`TreeArrays` into one batch.

        Columns shorter than the widest tree are zero-padded on the
        right (fresh rows a tree has not grown to yet carry the same
        defaults either way).
        """
        if not trees:
            raise GroupError("need at least one tree")
        rows = max(tree.rows for tree in trees)
        batch = cls(len(trees), rows)
        for g, tree in enumerate(trees):
            r = tree.rows
            batch.parent[g, :r] = tree.parent
            batch.on_tree[g, :r] = tree.on_tree
            batch.is_member[g, :r] = tree.is_member
            batch.has_ad[g, :r] = tree.has_ad
            batch.roots[g] = tree.root
        return batch

    def to_trees(self) -> list[TreeArrays]:
        """Unstack into per-group :class:`TreeArrays` (full width)."""
        trees: list[TreeArrays] = []
        for g in range(self.n_groups):
            tree = TreeArrays(self.rows)
            tree.root = int(self.roots[g])
            tree.parent[:] = self.parent[g]
            tree.on_tree[:] = self.on_tree[g]
            tree.is_member[:] = self.is_member[g]
            tree.has_ad[:] = self.has_ad[g]
            trees.append(tree)
        return trees

    def nbytes(self) -> int:
        """Total bytes held by the batch columns."""
        return (self.parent.nbytes + self.on_tree.nbytes
                + self.is_member.nbytes + self.has_ad.nbytes
                + self.roots.nbytes)


def pack_members(members_per_group: Sequence[np.ndarray]
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Pack ragged per-group member row lists into CSR-style arrays.

    Returns ``(member_rows, member_indptr)`` where group ``g``'s members
    are ``member_rows[member_indptr[g]:member_indptr[g + 1]]``.
    """
    counts = np.fromiter((len(m) for m in members_per_group),
                         dtype=np.int64, count=len(members_per_group))
    indptr = np.zeros(counts.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    if counts.sum() == 0:
        return np.empty(0, dtype=np.int64), indptr
    rows = np.concatenate(
        [np.asarray(m, dtype=np.int64) for m in members_per_group])
    return rows, indptr


@dataclass(frozen=True)
class BatchFloodResult:
    """Dense outcome of one batch of advertisement floods.

    Row ``g`` of each array is exactly the ``FloodResult`` of group
    ``g``'s single-group flood: ``arrival`` is ``inf`` for unreached
    rows, ``upstream``/``hops`` are ``-1``, the rendezvous row has
    arrival 0 and hops 0.
    """

    roots: np.ndarray
    arrival: np.ndarray
    upstream: np.ndarray
    hops: np.ndarray

    @property
    def n_groups(self) -> int:
        """Number of stacked groups."""
        return self.arrival.shape[0]

    @property
    def reached(self) -> np.ndarray:
        """Boolean ``(group, row)`` mask of delivered advertisements."""
        return np.isfinite(self.arrival)

    def receipt_counts(self) -> np.ndarray:
        """Number of reached rows per group."""
        return np.count_nonzero(self.reached, axis=1)


def flood_advertisements_batch(
    csr: CSRGraph,
    latency: np.ndarray,
    roots: np.ndarray,
    ttl: int,
    scheme: str = "nssa",
    *,
    capacities: np.ndarray | None = None,
    rngs: Sequence[RandomSource] | None = None,
    config: AnnouncementConfig | None = None,
    utility_config: UtilityConfig | None = None,
    alive: np.ndarray | None = None,
    epoch_ms: float | None = None,
) -> BatchFloodResult:
    """Flood one advertisement per group in shared epoch passes.

    Same semantics per group as
    :func:`repro.core.protocol.flood_advertisement` — see the module
    docstring for the bit-identity argument.  ``roots`` holds one
    rendezvous row per group; for ``scheme="ssa"`` pass ``capacities``
    plus one independent ``rngs[g]`` per group (the per-group draw
    sequence then matches a single-group flood seeded the same way).

    The SSA forwarding masks are materialized lazily, one ``bool(E)``
    edge mask per group that actually floods — batch width is bounded
    by memory for SSA; NSSA state is ``O(n_groups * n_rows)``.
    """
    if scheme not in ("nssa", "ssa"):
        raise GroupError(f"unknown announcement scheme {scheme!r}")
    n = csr.node_count
    roots = np.asarray(roots, dtype=np.int64)
    n_groups = roots.shape[0]
    if n_groups == 0:
        raise GroupError("need at least one group")
    if ((roots < 0) | (roots >= n)).any():
        raise GroupError("root row out of range")
    latency = np.asarray(latency, dtype=np.float64)
    if latency.shape != csr.indices.shape:
        raise GroupError("need one latency per directed CSR edge")
    if latency.size and latency.min() <= 0.0:
        raise GroupError("edge latencies must be positive")
    config = config or _DEFAULT_ANNOUNCEMENT
    if scheme == "ssa":
        if capacities is None or rngs is None:
            raise GroupError("ssa flooding needs capacities and rngs")
        if len(rngs) != n_groups:
            raise GroupError("need one rng per group")
        utility_config = utility_config or UtilityConfig()

    if epoch_ms is None:
        epoch_ms = float(latency.min()) if latency.size else 1.0
    if epoch_ms <= 0.0:
        raise GroupError("epoch_ms must be positive")

    arrival = np.full((n_groups, n), np.inf)
    upstream = np.full((n_groups, n), -1, dtype=np.int64)
    hops = np.full((n_groups, n), -1, dtype=np.int64)
    g_index = np.arange(n_groups)
    arrival[g_index, roots] = 0.0
    hops[g_index, roots] = 0
    expanded_at = np.full((n_groups, n), np.inf)
    #: SSA state: per-group "has sampled" row masks plus lazily created
    #: per-group edge masks (group -> bool(E)); NSSA forwards everywhere.
    sampled = (np.zeros((n_groups, n), dtype=bool)
               if scheme == "ssa" else None)
    allowed: dict[int, np.ndarray] | None = (
        {} if scheme == "ssa" else None)

    # Worklist of (group, row) coordinates flat-encoded as
    # ``g * n + row``, kept sorted, unique and *pending-only*
    # (``arrival < expanded_at``).  Invariant: every pending coordinate
    # is on the list — relaxation appends every coordinate it improves,
    # expansion ends pendingness — so each pass touches O(pending)
    # state instead of scanning the full (n_groups, n) masks for the
    # few groups still flooding.  Sorted flat keys are group-major with
    # ascending rows per group, the exact sender order the bit-identity
    # contract requires.  All worklist indexing runs on the raveled
    # state views: one 1-D gather per array per pass.
    arrival_f = arrival.ravel()
    expanded_f = expanded_at.ravel()
    hops_f = hops.ravel()
    upstream_f = upstream.ravel()
    n64 = np.int64(n)
    work = g_index * n64 + roots
    if alive is not None:
        work = work[alive[roots]]
    work_arrival = arrival_f[work]
    # Calendar split of the pending set.  The grid cells are global —
    # multiples of epoch_ms from zero, the same grid every per-group
    # bucket lands on — so each outer iteration expands the earliest
    # nonempty cell across all groups with one *scalar* boundary.  A
    # group whose earliest pending cell is later simply sits the pass
    # out; its own sequence of cell expansions (and hence its rows) is
    # untouched by the interleaving.  Coordinates due within the
    # horizon live on the sorted near list; later ones wait in far
    # chunks (appended O(1) per pass) and only get scanned when the
    # clock approaches, so per-pass work tracks the imminent frontier
    # rather than everything ever discovered.
    far_chunks: list[tuple[np.ndarray, np.ndarray]] = []
    horizon = _FAR_EPOCHS * epoch_ms
    while work.size or far_chunks:
        t_end = np.inf
        if work.size:
            t_end = ((np.floor(float(work_arrival.min()) / epoch_ms)
                      + 1.0) * epoch_ms)
        # Keep the horizon ahead of the clock: every pending coordinate
        # below the horizon is on the near list, so a cell's frontier
        # can never hide in the far store.
        while t_end > horizon:
            if far_chunks:
                far_keys = np.concatenate([c[0] for c in far_chunks])
                far_arrival = np.concatenate(
                    [c[1] for c in far_chunks])
                far_chunks.clear()
                # Only the latest copy of a coordinate matches the
                # state array; stale and already-expanded copies drop.
                live = ((far_arrival == arrival_f[far_keys])
                        & (far_arrival < expanded_f[far_keys]))
                far_keys = far_keys[live]
                far_arrival = far_arrival[live]
                if far_keys.size:
                    base = float(far_arrival.min())
                    if work.size:
                        base = min(base, float(work_arrival.min()))
                    horizon = base + _FAR_EPOCHS * epoch_ms
                    due = far_arrival < horizon
                    keys, values = far_keys[due], far_arrival[due]
                    order = np.argsort(keys)
                    work, work_arrival = _merge_pending(
                        work, work_arrival, keys[order], values[order])
                    if not due.all():
                        far_chunks.append(
                            (far_keys[~due], far_arrival[~due]))
                    t_end = ((np.floor(float(work_arrival.min())
                                       / epoch_ms) + 1.0) * epoch_ms)
            elif work.size:
                horizon = (float(work_arrival.min())
                           + _FAR_EPOCHS * epoch_ms)
            else:
                break
        if work.size == 0:
            continue
        while True:
            in_bucket = work_arrival < t_end
            frontier = work[in_bucket]
            if frontier.size == 0:
                break
            frontier_arrival = work_arrival[in_bucket]
            expanded_f[frontier] = frontier_arrival
            frontier_hops = hops_f[frontier]
            forwards = frontier_hops < ttl
            senders = frontier[forwards]
            touched = None
            if senders.size:
                if scheme == "ssa":
                    _sample_ssa_edges_batch(
                        csr, latency, senders // n64, senders % n64,
                        sampled, allowed, capacities, rngs, config,
                        utility_config)
                touched = _relax_batch(
                    csr, latency, senders, frontier_arrival[forwards],
                    frontier_hops[forwards], n64, arrival_f, upstream_f,
                    hops_f, allowed, alive)
            # Pendingness updates incrementally: the expanded frontier
            # drops out, the coordinates relaxation just improved join
            # the near list (or the far store, if due past the
            # horizon).  Everything else keeps both its membership and
            # its cached arrival, so no pass over the full state
            # arrays is needed.
            rest = ~in_bucket
            work, work_arrival = work[rest], work_arrival[rest]
            if touched is not None:
                won, won_arrival = touched
                near = won_arrival < horizon
                if not near.all():
                    far_chunks.append((won[~near], won_arrival[~near]))
                    won, won_arrival = won[near], won_arrival[near]
                if won.size:
                    work, work_arrival = _merge_pending(
                        work, work_arrival, won, won_arrival)
            if work.size == 0:
                break

    return BatchFloodResult(roots=roots, arrival=arrival,
                            upstream=upstream, hops=hops)


def _relax_batch(csr: CSRGraph, latency: np.ndarray,
                 senders: np.ndarray, sender_arrival: np.ndarray,
                 sender_hops: np.ndarray, n: np.int64,
                 arrival_f: np.ndarray, upstream_f: np.ndarray,
                 hops_f: np.ndarray,
                 allowed: dict[int, np.ndarray] | None,
                 alive: np.ndarray | None
                 ) -> tuple[np.ndarray, np.ndarray] | None:
    """One batched relaxation of every out-edge of the flat senders.

    ``senders`` holds sorted ``g * n + row`` flat keys from the
    worklist, so entries are group-major with ascending rows per group —
    each group's edge expansion order equals the single-group kernel's.
    ``sender_arrival``/``sender_hops`` carry the values the caller
    already gathered, so relaxation runs entirely on 1-D flat views
    with no 2-D fancy indexing.  Returns ``(keys, arrivals)`` — the
    sorted flat keys of the (group, target) coordinates whose arrival
    improved plus their new arrivals (the caller's new worklist
    entries) — or None.
    """
    sv = senders % n
    counts = np.diff(csr.indptr)[sv]
    positions = _concat_ranges(csr.indptr[sv], counts)
    if positions.size == 0:
        return None
    # np.repeat over the full counts (zeros included) stays aligned
    # with _concat_ranges, which drops empty ranges.
    pair = np.repeat(np.arange(sv.shape[0], dtype=np.int64), counts)
    if allowed is not None:
        src_g = (senders // n)[pair]
        keep = np.empty(positions.shape[0], dtype=bool)
        # Senders are group-major, so each group's edges are one
        # contiguous run; gather that group's edge mask per run.
        boundaries = np.nonzero(np.diff(src_g))[0] + 1
        bounds = np.concatenate(
            ([0], boundaries, [src_g.shape[0]]))
        for i in range(bounds.shape[0] - 1):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if lo == hi:
                continue
            mask = allowed.get(int(src_g[lo]))
            if mask is None:
                keep[lo:hi] = False
            else:
                keep[lo:hi] = mask[positions[lo:hi]]
        positions = positions[keep]
        pair = pair[keep]
        if positions.size == 0:
            return None
    targets = csr.indices[positions]
    # Flat key of each (group, target): the sender's group base
    # (senders - sv == g * n) plus the target row.
    tflat = (senders - sv)[pair] + targets
    candidates = sender_arrival[pair] + latency[positions]
    better = candidates < arrival_f[tflat]
    if alive is not None:
        better &= alive[targets]
    if not better.any():
        return None
    pair, tflat = pair[better], tflat[better]
    candidates = candidates[better]
    # Duplicate (group, target) pairs resolve to the earliest candidate
    # in each group's edge order, exactly as the single-group kernel
    # does.  The stable integer sort keeps edge order within equal
    # keys; the (rare) duplicate runs then pick their minimum candidate
    # with a segmented reduce — far cheaper than lexsorting on the
    # float candidates.
    order = np.argsort(tflat, kind="stable")
    flat_sorted = tflat[order]
    first = np.ones(order.shape[0], dtype=bool)
    first[1:] = flat_sorted[1:] != flat_sorted[:-1]
    if first.all():
        chosen = order
        won = flat_sorted
    else:
        sorted_cand = candidates[order]
        starts = np.nonzero(first)[0]
        run_id = np.cumsum(first) - 1
        run_min = np.minimum.reduceat(sorted_cand, starts)
        minima = np.nonzero(sorted_cand == run_min[run_id])[0]
        lead = np.ones(minima.shape[0], dtype=bool)
        lead[1:] = run_id[minima[1:]] != run_id[minima[:-1]]
        chosen = order[minima[lead]]
        won = flat_sorted[minima[lead]]
    winner = pair[chosen]
    won_arrival = candidates[chosen]
    arrival_f[won] = won_arrival
    upstream_f[won] = sv[winner]
    hops_f[won] = sender_hops[winner] + 1
    return won, won_arrival


def _sample_ssa_edges_batch(
        csr: CSRGraph, latency: np.ndarray, sg: np.ndarray,
        sv: np.ndarray, sampled: np.ndarray,
        allowed: dict[int, np.ndarray], capacities: np.ndarray,
        rngs: Sequence[RandomSource], config: AnnouncementConfig,
        utility_config: UtilityConfig) -> None:
    """Sample forwarding subsets group by group.

    Each group re-enters the exact single-group sampling helper on its
    own state slices and its own generator, so the per-group draw
    sequence — and hence the sampled forwarding mask — matches a
    single-group SSA flood seeded identically.
    """
    for g in np.unique(sg):
        g = int(g)
        mask = allowed.get(g)
        if mask is None:
            mask = allowed[g] = np.zeros(csr.indices.shape[0],
                                         dtype=bool)
        _sample_ssa_edges(csr, latency, sv[sg == g], sampled[g], mask,
                          capacities, rngs[g], config, utility_config)


# ----------------------------------------------------------------------
# Subscription and tree kernels
# ----------------------------------------------------------------------
def climb_subscriptions_batch(
        flood: BatchFloodResult, member_rows: np.ndarray,
        member_indptr: np.ndarray, max_rounds: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Graft every group's informed members' reverse paths at once.

    ``member_rows``/``member_indptr`` pack the ragged per-group member
    sets (see :func:`pack_members`).  Returns group-major ``(on_tree,
    is_member)`` masks; row ``g`` equals
    :func:`repro.core.protocol.climb_subscriptions` on group ``g``.
    """
    n_groups, n = flood.arrival.shape
    member_rows = np.asarray(member_rows, dtype=np.int64)
    member_indptr = np.asarray(member_indptr, dtype=np.int64)
    if member_indptr.shape != (n_groups + 1,):
        raise GroupError("member indptr does not match the batch")
    on_tree = np.zeros((n_groups, n), dtype=bool)
    is_member = np.zeros((n_groups, n), dtype=bool)
    n64 = np.int64(n)
    mg = np.repeat(np.arange(n_groups, dtype=np.int64),
                   np.diff(member_indptr))
    is_member[mg, member_rows] = True
    on_tree[np.arange(n_groups), flood.roots] = True
    # The climb walks flat g * n + row keys over raveled views; each
    # level dedups with a radix sort + neighbor mask (set semantics —
    # np.unique's hashing costs far more at these widths).
    on_tree_f = on_tree.ravel()
    upstream_f = flood.upstream.ravel()
    cursor = mg * n64 + member_rows
    cursor = cursor[np.isfinite(flood.arrival.ravel()[cursor])]
    rounds = max_rounds if max_rounds is not None else n
    for _ in range(rounds):
        cursor = cursor[~on_tree_f[cursor]]
        if cursor.size == 0:
            break
        on_tree_f[cursor] = True
        parents = upstream_f[cursor]
        valid = parents >= 0
        cursor = cursor[valid] - cursor[valid] % n64 + parents[valid]
        cursor.sort(kind="stable")
        if cursor.size:
            fresh = np.empty(cursor.shape[0], dtype=bool)
            fresh[0] = True
            np.not_equal(cursor[1:], cursor[:-1], out=fresh[1:])
            cursor = cursor[fresh]
    return on_tree, is_member


def tree_delays_batch(parent: np.ndarray, on_tree: np.ndarray,
                      arrival_latency: np.ndarray | None = None,
                      coords: np.ndarray | None = None,
                      roots: np.ndarray | None = None) -> np.ndarray:
    """Per-row delivery delay from each group's root (group-major, ms).

    The 2-D counterpart of :func:`repro.core.protocol.tree_delays`:
    edge cost is the shared coordinate distance between child and
    parent rows unless explicit group-major upstream latencies are
    given; off-tree rows (and every row of a rootless group) get
    ``inf``.
    """
    n_groups, n = parent.shape
    delays = np.full((n_groups, n), np.inf)
    if roots is None:
        root_mask = on_tree & (parent < 0)
        has_root = root_mask.any(axis=1)
        roots = np.where(has_root, root_mask.argmax(axis=1), -1)
    else:
        roots = np.asarray(roots, dtype=np.int64)
        has_root = roots >= 0
    g = np.nonzero(has_root)[0]
    delays[g, roots[g]] = 0.0
    # One dense scan builds the edge worklist (child, parent, cost);
    # each settle wave then touches only the still-unsettled edges
    # instead of rescanning the full (n_groups, n) masks per level.
    hg, hv = np.nonzero(on_tree & (parent >= 0))
    hp = parent[hg, hv]
    if arrival_latency is None:
        if coords is None:
            raise GroupError("need coords or per-row upstream latencies")
        delta = coords[hv] - coords[hp]
        edge_cost = np.sqrt((delta * delta).sum(axis=1))
    else:
        edge_cost = arrival_latency[hg, hv]
    delays_f = delays.ravel()
    n64 = np.int64(n)
    child = hg * n64 + hv
    par = hg * n64 + hp
    for _ in range(n):
        if child.size == 0:
            break
        from_root = delays_f[par]
        ready = np.isfinite(from_root)
        if not ready.any():
            break
        delays_f[child[ready]] = from_root[ready] + edge_cost[ready]
        wait = ~ready
        child, par = child[wait], par[wait]
        edge_cost = edge_cost[wait]
    return delays


# ----------------------------------------------------------------------
# Segmented per-group aggregation (dimensional telemetry columns)
# ----------------------------------------------------------------------
def group_depths_batch(hops: np.ndarray,
                       on_tree: np.ndarray) -> np.ndarray:
    """Per-group tree depth as one masked segmented max (int64).

    A dissemination tree is assembled from the flood's upstream
    pointers, so an on-tree row's depth below the root *is* its flood
    hop count; the group's tree depth is the deepest on-tree row.
    Groups with no tree (or a bare root) report 0.  Pure numpy over the
    ``(n_groups, n_rows)`` batch — no per-peer-group Python loop.
    """
    masked = np.where(on_tree, hops, -1)
    return np.maximum(masked.max(axis=1), 0).astype(np.int64)


def group_delay_cells_batch(delays: np.ndarray, member_mask: np.ndarray,
                            layout) -> np.ndarray:
    """Per-group delay-distribution rows via one flat ``bincount``.

    ``layout`` is any object with a ``cells`` attribute and a
    vectorized ``bin_indices(values) -> int64`` method mapping finite
    member delays (ms) to cell indices — in practice a
    :class:`repro.obs.dims.SketchLayout`, duck-typed so this kernel
    stays decoupled from the telemetry layer.  The segmented reduction
    flattens the key to ``group * cells + cell`` so the whole
    ``(n_groups, cells)`` int64 matrix costs one vectorized pass over
    the delivered members.
    """
    cells = layout.cells
    n_groups = delays.shape[0]
    sample_mask = member_mask & np.isfinite(delays)
    g, v = np.nonzero(sample_mask)
    if g.size == 0:
        return np.zeros((n_groups, cells), dtype=np.int64)
    flat = g.astype(np.int64) * cells + layout.bin_indices(delays[g, v])
    return np.bincount(
        flat, minlength=n_groups * cells).astype(np.int64).reshape(
            n_groups, cells)

"""Vectorized, epoch-batched protocol kernels over CSR snapshots.

The object layer simulates an advertisement flood one message at a time
on a binary heap.  The first receipt of a peer in that simulation is
exactly the earliest arrival over hop-bounded forwarding paths, so the
whole flood collapses to a *time-respecting relaxation*: peers are
settled in virtual-time epochs (delta-stepping buckets) and each epoch
relaxes every frontier edge in one numpy pass instead of dispatching
one event per copy.  For NSSA the result — arrival time, upstream and
hop count per peer — is **bit-identical** to the heap simulation
(pinned by ``tests/test_soa_equivalence.py``); for SSA the per-peer
forwarding subsets are sampled with the same Efraimidis-Spirakis keys
but in frontier-batched order, so runs are deterministic per seed and
statistically equivalent to, though not bit-identical with, the object
path (which samples in heap-pop order).

Subscription climbs, searcher attachment and dissemination delays are
the same story: parent-pointer chases become per-level gathers, BFS
becomes frontier sweeps, and per-tree metrics become ``bincount``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AnnouncementConfig, UtilityConfig
from ..errors import GroupError
from ..sim.random import RandomSource
from .arrays import CSRGraph, _concat_ranges

_DEFAULT_ANNOUNCEMENT = AnnouncementConfig()
_DEFAULT_UTILITY = UtilityConfig()


@dataclass(frozen=True)
class FloodResult:
    """Dense outcome of one advertisement flood.

    ``arrival`` is ``inf`` for unreached rows, ``upstream``/``hops``
    are ``-1``; the rendezvous row has arrival 0 and hops 0.
    """

    root: int
    arrival: np.ndarray
    upstream: np.ndarray
    hops: np.ndarray

    @property
    def reached(self) -> np.ndarray:
        """Boolean row mask of peers that received the advertisement."""
        return np.isfinite(self.arrival)

    def receipt_count(self) -> int:
        """Number of rows that received the advertisement."""
        return int(np.count_nonzero(self.reached))


def edge_latencies_from_coords(csr: CSRGraph, coords: np.ndarray,
                               min_latency_ms: float = 0.01) -> np.ndarray:
    """Euclidean coordinate distance per directed CSR edge (ms).

    The scale path prices every overlay hop with the coordinate-space
    estimate (what a real deployment would know); the object-equivalence
    tests instead pass exact per-edge latencies gathered from the
    underlay so both paths price hops identically.
    """
    sources = csr.edge_sources()
    delta = coords[sources] - coords[csr.indices]
    return np.maximum(np.sqrt((delta * delta).sum(axis=1)),
                      min_latency_ms)


def flood_advertisement(
    csr: CSRGraph,
    latency: np.ndarray,
    root: int,
    ttl: int,
    scheme: str = "nssa",
    *,
    capacities: np.ndarray | None = None,
    rng: RandomSource | None = None,
    config: AnnouncementConfig | None = None,
    utility_config: UtilityConfig | None = None,
    alive: np.ndarray | None = None,
    epoch_ms: float | None = None,
) -> FloodResult:
    """Flood one advertisement; returns per-row receipt arrays.

    ``latency`` holds one positive transit latency per directed CSR
    edge, aligned with ``csr.indices``.  ``epoch_ms`` is the virtual-
    time bucket width of the batched dispatch: every peer whose
    tentative arrival falls inside the current epoch is settled
    together and its out-edges relax in one vectorized pass.  The
    default width is the minimum edge latency, which makes every
    expansion *final* — no candidate generated in a bucket can land
    inside it — so the result matches the heap simulation exactly.
    Wider buckets run fewer passes and stay exact while the TTL gate
    is slack (``ttl`` at or above the reached hop radius), but under a
    tight gate a within-bucket arrival improvement may retroactively
    change a peer's hop count and hence its forwarding eligibility,
    which the fixpoint cannot retract; keep the default when bit-exact
    receipts matter.

    For ``scheme="ssa"`` each peer forwards to a utility-sampled subset
    of its neighbors (needs ``capacities`` and ``rng``); the sample is
    drawn once, when the peer first joins a frontier.
    """
    if scheme not in ("nssa", "ssa"):
        raise GroupError(f"unknown announcement scheme {scheme!r}")
    n = csr.node_count
    if not 0 <= root < n:
        raise GroupError(f"root row {root} out of range")
    latency = np.asarray(latency, dtype=np.float64)
    if latency.shape != csr.indices.shape:
        raise GroupError("need one latency per directed CSR edge")
    if latency.size and latency.min() <= 0.0:
        raise GroupError("edge latencies must be positive")
    config = config or _DEFAULT_ANNOUNCEMENT
    if scheme == "ssa":
        if capacities is None or rng is None:
            raise GroupError("ssa flooding needs capacities and an rng")
        utility_config = utility_config or _DEFAULT_UTILITY

    if epoch_ms is None:
        epoch_ms = float(latency.min()) if latency.size else 1.0
    if epoch_ms <= 0.0:
        raise GroupError("epoch_ms must be positive")

    arrival = np.full(n, np.inf)
    upstream = np.full(n, -1, dtype=np.int64)
    hops = np.full(n, -1, dtype=np.int64)
    arrival[root] = 0.0
    hops[root] = 0
    #: Arrival value at which a row's edges were last relaxed; a row
    #: whose arrival improves below this re-enters the frontier.
    expanded_at = np.full(n, np.inf)
    #: Per-directed-edge mask of links the owner actually forwards on
    #: (SSA samples it lazily; NSSA forwards everywhere).
    allowed = None if scheme == "nssa" else np.zeros(
        csr.indices.shape[0], dtype=bool)
    sampled = np.zeros(n, dtype=bool) if scheme == "ssa" else None
    degrees = csr.degrees()

    while True:
        pending = arrival < expanded_at
        if alive is not None:
            pending &= alive
        if not pending.any():
            break
        # Epoch boundary: settle everything due before the next bucket
        # edge at or after the earliest pending arrival.
        floor = arrival[pending].min()
        bucket_end = (np.floor(floor / epoch_ms) + 1.0) * epoch_ms
        while True:
            frontier = np.nonzero(pending & (arrival < bucket_end))[0]
            if frontier.size == 0:
                break
            expanded_at[frontier] = arrival[frontier]
            senders = frontier[hops[frontier] < ttl]
            if senders.size:
                if scheme == "ssa":
                    _sample_ssa_edges(
                        csr, latency, senders, sampled, allowed,
                        capacities, rng, config, utility_config)
                _relax(csr, latency, senders, arrival, upstream, hops,
                       allowed, alive)
            pending = arrival < expanded_at
            if alive is not None:
                pending &= alive

    return FloodResult(root=root, arrival=arrival, upstream=upstream,
                       hops=hops)


def _relax(csr: CSRGraph, latency: np.ndarray, senders: np.ndarray,
           arrival: np.ndarray, upstream: np.ndarray, hops: np.ndarray,
           allowed: np.ndarray | None,
           alive: np.ndarray | None) -> None:
    """One batched relaxation of every out-edge of ``senders``."""
    counts = np.diff(csr.indptr)[senders]
    positions = _concat_ranges(csr.indptr[senders], counts)
    if positions.size == 0:
        return
    if allowed is not None:
        positions = positions[allowed[positions]]
        if positions.size == 0:
            return
    sources = csr.edge_sources()[positions]
    targets = csr.indices[positions].astype(np.int64)
    candidates = arrival[sources] + latency[positions]
    better = candidates < arrival[targets]
    if alive is not None:
        better &= alive[targets]
    if not better.any():
        return
    sources, targets = sources[better], targets[better]
    candidates = candidates[better]
    # Resolve duplicate targets to the earliest candidate; the stable
    # lexsort breaks exact-time ties by edge order, mirroring the heap
    # simulation's send-sequence tie-break for same-time copies.
    order = np.lexsort((candidates, targets))
    targets_sorted = targets[order]
    first = np.ones(order.shape[0], dtype=bool)
    first[1:] = targets_sorted[1:] != targets_sorted[:-1]
    chosen = order[first]
    t, s = targets[chosen], sources[chosen]
    arrival[t] = candidates[chosen]
    upstream[t] = s
    hops[t] = hops[s] + 1


def _sample_ssa_edges(csr: CSRGraph, latency: np.ndarray,
                      senders: np.ndarray, sampled: np.ndarray,
                      allowed: np.ndarray, capacities: np.ndarray,
                      rng: RandomSource, config: AnnouncementConfig,
                      utility_config: UtilityConfig) -> None:
    """Sample the forwarding subset of newly-frontiered SSA senders.

    One segmented pass over the senders' edge slices: per-sender
    resource levels, Eq. 1-5 preferences and Efraimidis-Spirakis keys,
    then a per-segment top-``fanout`` selection.  Senders are processed
    in row order so the draw sequence is deterministic per seed.
    """
    fresh = senders[~sampled[senders]]
    if fresh.size == 0:
        return
    fresh = np.sort(fresh)
    sampled[fresh] = True
    counts = np.diff(csr.indptr)[fresh]
    positions = _concat_ranges(csr.indptr[fresh], counts)
    if positions.size == 0:
        return
    # Segment bookkeeping: edge i belongs to segment seg[i] with
    # contiguous extent [seg_start, seg_start + seg_count).
    nonzero = counts > 0
    seg_counts = counts[nonzero]
    seg_rows = fresh[nonzero]
    seg_starts = np.zeros(seg_counts.shape[0], dtype=np.int64)
    np.cumsum(seg_counts[:-1], out=seg_starts[1:])
    seg = np.repeat(np.arange(seg_counts.shape[0]), seg_counts)

    neighbor_caps = capacities[csr.indices[positions]]
    own_caps = capacities[seg_rows]
    # Resource level r = fraction of sampled (here: neighbor) capacities
    # strictly below the sender's own, clamped like the scalar helper.
    below = (neighbor_caps < own_caps[seg]).astype(np.float64)
    r = np.add.reduceat(below, seg_starts) / seg_counts
    r = np.clip(r, utility_config.min_resource_level,
                utility_config.max_resource_level)
    alpha, beta = 1.0 - r, r
    gamma = r ** (-np.log(r))

    # Distance preference (Eq. 1-2) on the edge latencies.
    d = np.maximum(latency[positions], utility_config.min_distance_ms)
    d_max = np.maximum.reduceat(d, seg_starts)
    dn = d / d_max[seg]
    dp = 1.0 / dn - alpha[seg]
    dp = dp / np.add.reduceat(dp, seg_starts)[seg]
    # Capacity preference (Eq. 3).
    cp = np.maximum(neighbor_caps - beta[seg], 1e-12)
    cp = cp / np.add.reduceat(cp, seg_starts)[seg]
    preference = gamma[seg] * cp + (1.0 - gamma[seg]) * dp
    preference = preference / np.add.reduceat(
        preference, seg_starts)[seg]

    # Efraimidis-Spirakis keys; per-segment top-fanout selection.
    draws = rng.random(preference.shape[0])
    keys = np.log(draws) / preference
    fanout = np.maximum(
        config.ssa_min_fanout,
        np.rint(config.ssa_fanout_fraction * seg_counts).astype(np.int64))
    fanout = np.minimum(fanout, seg_counts)
    order = np.lexsort((-keys, seg))
    rank = np.arange(order.shape[0], dtype=np.int64) - seg_starts[seg]
    picked = positions[order[rank < fanout[seg]]]
    allowed[picked] = True


# ----------------------------------------------------------------------
# Subscription and tree kernels
# ----------------------------------------------------------------------
def climb_subscriptions(flood: FloodResult, members: np.ndarray,
                        max_rounds: int | None = None
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Graft informed members' reverse paths onto the tree.

    Vectorized reverse-path subscription: every member that received
    the advertisement walks its ``upstream`` chain toward the root, one
    tree level per gather.  Returns ``(on_tree, is_member)`` row masks;
    the tree's parent array is ``flood.upstream`` restricted to
    ``on_tree``.  Members that never received the advertisement are
    left off the tree (see :func:`attach_searchers`).
    """
    n = flood.arrival.shape[0]
    members = np.asarray(members, dtype=np.int64)
    on_tree = np.zeros(n, dtype=bool)
    is_member = np.zeros(n, dtype=bool)
    is_member[members] = True
    on_tree[flood.root] = True
    active = members[flood.reached[members]]
    rounds = max_rounds if max_rounds is not None else n
    for _ in range(rounds):
        active = active[~on_tree[active]]
        if active.size == 0:
            break
        on_tree[active] = True
        parents = flood.upstream[active]
        active = np.unique(parents[parents >= 0])
    return on_tree, is_member


def climb_subscription_claims(upstream: np.ndarray,
                              member_rows: np.ndarray,
                              root: int
                              ) -> tuple[np.ndarray, np.ndarray]:
    """First-claimer reverse-path climb over an upstream forest.

    Reproduces the *sequential* reverse-path subscription of the object
    layer (:func:`repro.groupcast.subscription.subscribe_members`) in a
    few array passes: processing members in list order, each member
    walks its ``upstream`` chain toward ``root`` and grafts every node
    not yet on the tree.  A node is therefore grafted by the first
    member (lowest list index) whose chain contains it — the minimum
    member index over each node's subtree of walkers, computed here by
    min-propagation up the parent pointers.

    Returns ``(claim, hops)``: ``claim[row]`` is the index into
    ``member_rows`` of the member whose walk grafted the row (-1 for
    rows on no chain, and for ``root``, which pre-exists on the tree);
    ``hops[i]`` is the number of rows member ``i`` grafted — exactly
    its subscription message count in the sequential walk.
    """
    n = upstream.shape[0]
    member_rows = np.asarray(member_rows, dtype=np.int64)
    big = np.iinfo(np.int64).max
    order_val = np.full(n, big, dtype=np.int64)
    orders = np.arange(member_rows.shape[0], dtype=np.int64)
    np.minimum.at(order_val, member_rows, orders)
    changed = np.unique(member_rows)
    # Push each row's best (lowest) claimant index to its parent until
    # the minima stop moving; iteration count is the deepest chain.
    for _ in range(n):
        parents = upstream[changed]
        valid = parents >= 0
        if not valid.any():
            break
        parents = parents[valid]
        values = order_val[changed[valid]]
        before = order_val[parents].copy()
        np.minimum.at(order_val, parents, values)
        improved = order_val[parents] < before
        if not improved.any():
            break
        changed = np.unique(parents[improved])
    claimed = order_val < big
    if 0 <= root < n:
        claimed[root] = False
    claim = np.where(claimed, order_val, -1)
    hops = np.bincount(order_val[claimed],
                       minlength=member_rows.shape[0])
    return claim, hops


def attach_searchers(csr: CSRGraph, flood: FloodResult,
                     members: np.ndarray, on_tree: np.ndarray,
                     search_ttl: int,
                     alive: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Ripple-search stand-in for members without the advertisement.

    A multi-source BFS from the informed set gives every uninformed
    member its closest informed peer within ``search_ttl`` overlay
    hops; the member's BFS chain is grafted onto the tree and the
    informed anchor's reverse path is climbed.  Returns
    ``(parent, on_tree, failed_members)`` where ``parent`` merges the
    search grafts over ``flood.upstream``.

    This is the scale-path approximation of the object ripple search:
    the anchor is the hop-closest informed peer rather than the
    latency-earliest responder, and search traffic is not simulated
    message by message.
    """
    n = csr.node_count
    members = np.asarray(members, dtype=np.int64)
    parent = np.where(on_tree, flood.upstream, -1)
    searchers = members[~flood.reached[members]]
    if searchers.size == 0:
        return parent, on_tree, searchers
    informed = np.nonzero(flood.reached)[0]
    hops_to_informed, toward = _bfs_with_parents(
        csr, informed, alive=alive)
    reachable = searchers[
        (hops_to_informed[searchers] >= 0)
        & (hops_to_informed[searchers] <= search_ttl)]
    failed = searchers[~np.isin(searchers, reachable)]
    # Walk each reachable searcher's BFS chain toward its anchor,
    # grafting hop by hop; then climb the anchor's reverse path.
    active = reachable
    for _ in range(search_ttl + 1):
        if active.size == 0:
            break
        at_anchor = hops_to_informed[active] == 0
        anchors = active[at_anchor]
        if anchors.size:
            chain = anchors
            for _ in range(n):
                chain = chain[~on_tree[chain]]
                if chain.size == 0:
                    break
                on_tree[chain] = True
                parent[chain] = flood.upstream[chain]
                nxt = flood.upstream[chain]
                chain = np.unique(nxt[nxt >= 0])
        walkers = active[~at_anchor]
        fresh = walkers[~on_tree[walkers]]
        on_tree[fresh] = True
        parent[fresh] = toward[fresh]
        active = np.unique(toward[walkers][toward[walkers] >= 0])
    return parent, on_tree, failed


def _bfs_with_parents(csr: CSRGraph, roots: np.ndarray,
                      alive: np.ndarray | None = None
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Multi-source BFS returning ``(hops, toward)``.

    ``toward[v]`` is the BFS predecessor of ``v`` — one deterministic
    step from ``v`` toward the nearest root (lowest-row tie-break).
    """
    n = csr.node_count
    hops = np.full(n, -1, dtype=np.int64)
    toward = np.full(n, -1, dtype=np.int64)
    roots = np.asarray(roots, dtype=np.int64)
    if alive is not None:
        roots = roots[alive[roots]]
    hops[roots] = 0
    frontier = roots
    level = 0
    while frontier.size:
        level += 1
        counts = np.diff(csr.indptr)[frontier]
        positions = _concat_ranges(csr.indptr[frontier], counts)
        sources = csr.edge_sources()[positions]
        targets = csr.indices[positions].astype(np.int64)
        mask = hops[targets] < 0
        if alive is not None:
            mask &= alive[targets]
        sources, targets = sources[mask], targets[mask]
        if targets.size == 0:
            break
        order = np.lexsort((sources, targets))
        targets_sorted = targets[order]
        first = np.ones(order.shape[0], dtype=bool)
        first[1:] = targets_sorted[1:] != targets_sorted[:-1]
        chosen = order[first]
        fresh = targets[chosen]
        hops[fresh] = level
        toward[fresh] = sources[chosen]
        frontier = fresh
    return hops, toward


def tree_delays(parent: np.ndarray, on_tree: np.ndarray,
                arrival_latency: np.ndarray | None = None,
                coords: np.ndarray | None = None,
                root: int | None = None) -> np.ndarray:
    """Per-row delivery delay through the tree from the root (ms).

    Edge cost is the coordinate distance between child and parent
    (``coords``) unless explicit per-row upstream latencies are given.
    Computed one tree level per pass (gather + scatter); off-tree rows
    get ``inf``.
    """
    n = parent.shape[0]
    delays = np.full(n, np.inf)
    if root is None:
        roots = np.nonzero(on_tree & (parent < 0))[0]
        if roots.size == 0:
            return delays
        root = int(roots[0])
    delays[root] = 0.0
    if arrival_latency is None:
        if coords is None:
            raise GroupError("need coords or per-row upstream latencies")
        has_parent = on_tree & (parent >= 0)
        arrival_latency = np.zeros(n)
        rows = np.nonzero(has_parent)[0]
        delta = coords[rows] - coords[parent[rows]]
        arrival_latency[rows] = np.sqrt((delta * delta).sum(axis=1))
    pending = on_tree & ~np.isfinite(delays)
    for _ in range(n):
        if not pending.any():
            break
        rows = np.nonzero(pending)[0]
        parents = parent[rows]
        ready = (parents >= 0) & np.isfinite(delays[parents])
        if not ready.any():
            break
        rows = rows[ready]
        delays[rows] = delays[parent[rows]] + arrival_latency[rows]
        pending[rows] = False
    return delays


def synthetic_power_law_csr(
    n: int, rng: RandomSource, exponent: float = 2.2,
    min_degree: int = 2, max_degree: int = 64,
) -> CSRGraph:
    """A connected power-law-ish overlay built entirely in arrays.

    Configuration-model edges over a Zipf-like degree target plus a
    random-spine guarantee of connectivity — the scale benchmark's
    stand-in for the bootstrap protocol, built in O(edges) numpy work
    with no per-peer Python objects.
    """
    if n < 2:
        raise GroupError("need at least two peers")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    rng.shuffle(weights)
    degrees = np.clip(
        np.rint(weights / weights.mean() * 2.0 * min_degree),
        min_degree, max_degree).astype(np.int64)
    # Spine: peer i links to a random earlier peer (connectivity).
    spine_targets = (rng.random(n - 1)
                     * np.arange(1, n, dtype=np.float64)).astype(np.int64)
    spine_u = np.arange(1, n, dtype=np.int64)
    # Configuration-model extras: endpoints drawn by degree weight.
    extra = max(int(degrees.sum() // 2) - (n - 1), 0)
    p = degrees / degrees.sum()
    u = rng.choice(n, size=extra, p=p)
    v = rng.choice(n, size=extra, p=p)
    keep = u != v
    heads = np.concatenate([spine_u, u[keep]])
    tails = np.concatenate([spine_targets, v[keep]])
    # De-duplicate undirected pairs.
    low = np.minimum(heads, tails)
    high = np.maximum(heads, tails)
    pairs = np.unique(low * np.int64(n) + high)
    return CSRGraph.from_edges(n, pairs // n, pairs % n)

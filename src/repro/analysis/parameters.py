"""Exact parameter derivation and estimator error analysis.

Section 3.1: the parameters ``alpha``, ``beta``, ``gamma`` "can be
mathematically derived by using techniques similar to the ones used by
Bu and Towsley", but that needs exact population statistics that a
decentralized system lacks, so GroupCast approximates via the sampled
resource level.  This module provides the exact derivation — using the
true capacity distribution — and quantifies the sampling error of the
protocol's estimator, making the paper's accuracy trade-off measurable.
"""

from __future__ import annotations

import numpy as np

from ..config import UtilityConfig
from ..errors import ConfigurationError
from ..peers.capacity import CapacityDistribution
from ..sim.random import RandomSource
from ..utility.preference import derive_parameters
from ..utility.resource_level import estimate_resource_level

_DEFAULT_CONFIG = UtilityConfig()


def analytic_parameters(
    capacity: float,
    distribution: CapacityDistribution,
    config: UtilityConfig = _DEFAULT_CONFIG,
) -> tuple[float, float, float]:
    """Exact ``(alpha, beta, gamma)`` from the true capacity distribution.

    Uses the population resource level ``r = P(C < capacity)`` instead of
    a sampled estimate — the value a Bu-Towsley style derivation with
    global knowledge would target.
    """
    resource_level = distribution.resource_level_of(capacity)
    return derive_parameters(resource_level, config)


def resource_level_estimation_error(
    capacity: float,
    distribution: CapacityDistribution,
    sample_size: int,
    rng: RandomSource,
    trials: int = 200,
    config: UtilityConfig = _DEFAULT_CONFIG,
) -> dict[str, float]:
    """Monte-Carlo error of the sampled resource-level estimator.

    Draws ``trials`` samples of ``sample_size`` capacities, runs the
    protocol's estimator, and reports bias / RMSE against the exact
    population value (after the same clamping the protocol applies).
    """
    if sample_size < 1:
        raise ConfigurationError("sample_size must be >= 1")
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    exact = config.clamp_resource_level(
        distribution.resource_level_of(capacity))
    estimates = np.empty(trials)
    for trial in range(trials):
        sample = distribution.sample(rng, sample_size)
        estimates[trial] = estimate_resource_level(
            capacity, sample, config)
    errors = estimates - exact
    return {
        "exact": exact,
        "mean_estimate": float(estimates.mean()),
        "bias": float(errors.mean()),
        "rmse": float(np.sqrt((errors ** 2).mean())),
    }

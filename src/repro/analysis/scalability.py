"""Group-size scalability models: unicast vs star vs GroupCast trees.

The paper's abstract claims GroupCast "can improve the scalability of
wide-area group communication services by one to two orders of
magnitude"; the introduction grounds it in Skype's 6-party conference
cap.  These models make the claim computable.  A peer of capacity ``C``
can forward ``C`` concurrent payload copies (the 64 kbps-connection
definition of Section 3.1).  The largest group a scheme can serve from a
given speaker is then:

* **full unicast** (Skype): the speaker sends every copy itself —
  ``group <= C_speaker + 1``;
* **client/server star**: the server relays every copy —
  ``group <= C_server + 1`` (scaling requires buying a bigger server);
* **GroupCast tree**: every member forwards within its own capacity, so
  group size is bounded by the *total* forwarding capacity of the
  population, growing with N rather than with any single node.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..groupcast.spanning_tree import SpanningTree
from ..peers.capacity import CapacityDistribution


def max_group_unicast(speaker_capacity: float) -> int:
    """Largest conference a speaker can serve over full unicast."""
    if speaker_capacity <= 0:
        raise ConfigurationError("capacity must be positive")
    return int(speaker_capacity) + 1


def max_group_star(server_capacity: float) -> int:
    """Largest group a single relay server can serve."""
    if server_capacity <= 0:
        raise ConfigurationError("capacity must be positive")
    return int(server_capacity) + 1


def max_group_tree(capacities: np.ndarray) -> int:
    """Largest group a capacity-respecting tree over ``capacities`` serves.

    A tree over ``k`` nodes needs ``k - 1`` forwarded copies in total,
    and a node of capacity ``C`` can supply at most ``C`` of them.
    Greedily admitting the most capable peers first, the largest
    feasible ``k`` satisfies ``sum of top-k capacities >= k - 1`` —
    every member also brings its own forwarding budget, which is exactly
    why end-system multicast scales with the population.
    """
    values = np.sort(np.asarray(capacities, dtype=float))[::-1]
    if values.size == 0 or (values <= 0).any():
        raise ConfigurationError("capacities must be positive")
    total = 0.0
    feasible = 0
    for k, capacity in enumerate(values, start=1):
        total += capacity
        if total >= k - 1:
            feasible = k
    return feasible


def expected_scalability_gain(
    distribution: CapacityDistribution,
    population: int,
    rng,
    speaker_percentile: float = 0.5,
) -> dict[str, float]:
    """Monte-Carlo the three bounds for one sampled population.

    ``speaker_percentile`` picks the unicast speaker (and star server)
    from the sampled capacity distribution — 0.5 models a typical user
    hosting a call, higher values model provisioned servers.
    Returns the three group-size bounds and the tree/unicast gain.
    """
    if not 0.0 <= speaker_percentile <= 1.0:
        raise ConfigurationError("speaker_percentile must be in [0, 1]")
    capacities = distribution.sample(rng, population)
    speaker = float(np.quantile(capacities, speaker_percentile))
    unicast = max_group_unicast(speaker)
    star = max_group_star(speaker)
    tree = min(max_group_tree(capacities), population)
    return {
        "unicast": float(unicast),
        "star": float(star),
        "tree": float(tree),
        "gain_orders": float(np.log10(tree / unicast)),
    }


def tree_respects_capacities(tree: SpanningTree,
                             capacities: dict[int, float]) -> bool:
    """Check a concrete tree against the per-node forwarding budget."""
    return all(len(tree.children(node)) <= capacities[node]
               for node in tree.nodes())

"""Branching-process estimates of advertisement traffic.

Model the overlay as a random graph with ``n`` nodes and mean degree
``d``.  An announcement spreads as a branching process: the rendezvous
forwards to ``f0`` neighbors; every newly informed node forwards to
``f`` of its remaining ``d - 1`` neighbors, but only a fraction of those
targets are *new* (the rest are duplicates that cost a message and die).

With ``r_h`` nodes newly reached at hop ``h`` and ``S_h`` the total
informed so far, the fraction of forwards that hit uninformed nodes is
approximated by the uncovered fraction ``1 - S_h / n``, giving

``r_{h+1} = r_h * f * (1 - S_h / n)``  and  ``messages += r_h * f``.

NSSA uses ``f = d - 1`` (flood everything except the upstream); SSA uses
``f = max(min_fanout, fanout_fraction * (d - 1))``.  The model is crude
— it ignores degree correlations and clustering — but lands within a
small factor of the simulated counts (validated by the test suite) and
exposes the scaling law behind Figure 11: both schemes are ``O(n)``,
with SSA's constant smaller by roughly ``d / (fanout * d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SpreadEstimate:
    """Result of one branching-process evaluation."""

    messages: float
    reached: float
    hops_used: int


def _spread(n: float, mean_degree: float, fanout: float,
            ttl: int) -> SpreadEstimate:
    if n < 2:
        raise ConfigurationError("need at least two nodes")
    if mean_degree <= 1.0:
        raise ConfigurationError("mean degree must exceed 1")
    if fanout <= 0.0:
        raise ConfigurationError("fanout must be positive")
    if ttl < 1:
        raise ConfigurationError("ttl must be >= 1")
    messages = 0.0
    informed = 1.0
    newly = 1.0
    hops = 0
    for hop in range(ttl):
        sends = newly * fanout
        if sends <= 0.0:
            break
        messages += sends
        fresh = sends * max(0.0, 1.0 - informed / n)
        fresh = min(fresh, n - informed)
        if fresh <= 1e-9:
            hops = hop + 1
            break
        informed += fresh
        newly = fresh
        hops = hop + 1
    return SpreadEstimate(messages=messages, reached=informed,
                          hops_used=hops)


def nssa_expected_messages(n: int, mean_degree: float,
                           ttl: int) -> SpreadEstimate:
    """Expected NSSA traffic: every node floods its remaining links."""
    return _spread(float(n), mean_degree, mean_degree - 1.0, ttl)


def ssa_expected_messages(n: int, mean_degree: float, ttl: int,
                          fanout_fraction: float,
                          min_fanout: int = 2) -> SpreadEstimate:
    """Expected SSA traffic with utility-subset forwarding."""
    if not 0.0 < fanout_fraction <= 1.0:
        raise ConfigurationError("fanout_fraction must be in (0, 1]")
    fanout = max(float(min_fanout),
                 fanout_fraction * (mean_degree - 1.0))
    fanout = min(fanout, mean_degree - 1.0) if mean_degree - 1.0 >= \
        min_fanout else mean_degree - 1.0
    return _spread(float(n), mean_degree, fanout, ttl)


def expected_reach(n: int, mean_degree: float, ttl: int,
                   fanout_fraction: float = 1.0,
                   min_fanout: int = 2) -> float:
    """Fraction of the overlay an announcement is expected to reach."""
    if fanout_fraction >= 1.0:
        estimate = nssa_expected_messages(n, mean_degree, ttl)
    else:
        estimate = ssa_expected_messages(
            n, mean_degree, ttl, fanout_fraction, min_fanout)
    return estimate.reached / n


def ssa_savings(n: int, mean_degree: float, ttl: int,
                fanout_fraction: float, min_fanout: int = 2) -> float:
    """Expected fraction of NSSA's traffic that SSA avoids (0..1)."""
    nssa = nssa_expected_messages(n, mean_degree, ttl)
    ssa = ssa_expected_messages(
        n, mean_degree, ttl, fanout_fraction, min_fanout)
    if nssa.messages <= 0.0:
        return 0.0
    return max(0.0, 1.0 - ssa.messages / nssa.messages)

"""Analytical models of GroupCast's costs and benefits.

The paper evaluates GroupCast "through analytical and experimental
analysis of the costs and benefits of the proposed techniques"; this
package carries the analytical half:

* :mod:`.message_costs` — branching-process estimates of SSA/NSSA
  advertisement traffic and the expected SSA savings;
* :mod:`.powerlaw` — the hop-pair expansion ``P(h) ~ h**hbar`` of
  Section 3.3 measured on real overlays, plus diameter estimation;
* :mod:`.parameters` — exact (distribution-aware) derivation of
  ``alpha/beta/gamma`` and the sampling error of the resource-level
  estimator the protocol uses instead.
"""

from .message_costs import (
    expected_reach,
    nssa_expected_messages,
    ssa_expected_messages,
    ssa_savings,
)
from .powerlaw import hop_pair_counts, hop_pair_exponent
from .parameters import (
    analytic_parameters,
    resource_level_estimation_error,
)
from .scalability import (
    expected_scalability_gain,
    max_group_star,
    max_group_tree,
    max_group_unicast,
    tree_respects_capacities,
)

__all__ = [
    "expected_scalability_gain",
    "max_group_star",
    "max_group_tree",
    "max_group_unicast",
    "tree_respects_capacities",
    "expected_reach",
    "nssa_expected_messages",
    "ssa_expected_messages",
    "ssa_savings",
    "hop_pair_counts",
    "hop_pair_exponent",
    "analytic_parameters",
    "resource_level_estimation_error",
]

"""Hop-pair expansion analysis of overlay topologies.

Section 3.3 recalls the power-law expansion property: in a power-law
graph the number of node pairs within ``h`` hops satisfies
``P(h) ~ h**hbar`` for ``h`` well below the diameter.  Large-diameter
overlays (the Gnutella pathology the paper cites) violate this and make
scoped searches expensive; GroupCast's utility-based management keeps
the diameter low.  These helpers measure the expansion curve and fit
``hbar`` on real :class:`~repro.overlay.graph.OverlayNetwork` instances.
"""

from __future__ import annotations

import numpy as np

from ..errors import OverlayError
from ..overlay.graph import OverlayNetwork
from ..sim.random import RandomSource


def hop_pair_counts(overlay: OverlayNetwork, rng: RandomSource,
                    sample: int = 64) -> np.ndarray:
    """Estimated ``P(h)``: node pairs within ``h`` hops, for h = 1..max.

    BFS from a random sample of sources; counts are scaled up to the
    full population.  Index 0 of the returned array corresponds to
    ``h = 1``.
    """
    ids = overlay.peer_ids()
    if len(ids) < 2:
        raise OverlayError("need at least two peers")
    sample = min(sample, len(ids))
    picks = rng.choice(len(ids), size=sample, replace=False)
    max_hops = 0
    per_source: list[np.ndarray] = []
    for index in picks:
        distances = overlay.hop_distances_from(ids[int(index)])
        hops = np.asarray([h for h in distances.values() if h > 0])
        if hops.size == 0:
            per_source.append(np.zeros(1))
            continue
        counts = np.bincount(hops)[1:]  # drop h=0
        per_source.append(np.cumsum(counts))
        max_hops = max(max_hops, counts.size)
    if max_hops == 0:
        raise OverlayError("overlay has no links")
    totals = np.zeros(max_hops)
    for cumulative in per_source:
        padded = np.pad(cumulative,
                        (0, max_hops - cumulative.size),
                        mode="edge" if cumulative.size else "constant")
        totals += padded
    scale = len(ids) / sample
    return totals * scale


def hop_pair_exponent(overlay: OverlayNetwork, rng: RandomSource,
                      sample: int = 64) -> tuple[float, int]:
    """Fit ``hbar`` of ``P(h) ~ h**hbar`` and report the eccentricity.

    The fit uses hops up to the curve's saturation point (90 % of all
    pairs), as the law only holds for ``h`` much below the diameter.
    Returns ``(hbar, max_hops_observed)``.
    """
    totals = hop_pair_counts(overlay, rng, sample)
    saturation = 0.9 * totals[-1]
    cutoff = int(np.searchsorted(totals, saturation)) + 1
    cutoff = max(cutoff, 3)
    hops = np.arange(1, min(cutoff, totals.size) + 1)
    values = totals[: hops.size]
    keep = values > 0
    if keep.sum() < 2:
        raise OverlayError("not enough expansion points for a fit")
    slope, _ = np.polyfit(np.log10(hops[keep]), np.log10(values[keep]), 1)
    return float(slope), int(totals.size)

"""Quickstart: build a GroupCast network, open a group, send a message.

Run with::

    python examples/quickstart.py

Builds a 400-peer utility-aware overlay over a simulated transit-stub
Internet, establishes a communication group of 40 members through SSA
advertisement + reverse-path subscription, publishes a payload, and
compares the result against the IP-multicast lower bound.
"""

from repro import GroupCastMiddleware
from repro.metrics import link_stress, relative_delay_penalty


def main() -> None:
    print("Building a 400-peer GroupCast deployment ...")
    middleware = GroupCastMiddleware.build(peer_count=400, seed=11)
    deployment = middleware.deployment
    print(f"  overlay: {deployment.overlay.peer_count} peers, "
          f"{deployment.overlay.edge_count} links, "
          f"connected={deployment.overlay.is_connected()}")

    members = middleware.sample_members(40)
    group = middleware.create_group(members=members)
    print(f"\nGroup {group.group_id} established via "
          f"{group.scheme.upper()}:")
    print(f"  rendezvous point: peer {group.rendezvous} "
          f"(capacity "
          f"{deployment.peer_info(group.rendezvous).capacity:.0f}x)")
    print(f"  members subscribed: {len(group.members)} / {len(members)}")
    print(f"  spanning tree: {group.tree.node_count} nodes "
          f"({len(group.tree.relays)} relays), height "
          f"{group.tree.height()}")
    print(f"  advertisement messages: "
          f"{group.advertisement.messages_sent}")

    source = sorted(group.members)[0]
    report = middleware.publish(group.group_id, source)
    ip_tree = middleware.ip_multicast_reference(group.group_id, source)
    print(f"\nPayload from peer {source}:")
    print(f"  average delay: {report.average_member_delay_ms:.1f} ms "
          f"(IP multicast: {ip_tree.average_delay_ms:.1f} ms)")
    print(f"  relative delay penalty: "
          f"{relative_delay_penalty(report, ip_tree):.2f}")
    print(f"  link stress: {link_stress(report, ip_tree):.2f}")
    print(f"  IP messages: {report.ip_messages} "
          f"(IP multicast: {ip_tree.link_count})")


if __name__ == "__main__":
    main()

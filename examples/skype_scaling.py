"""Why Skype capped conferences at 6: unicast fan-out vs GroupCast trees.

Run with::

    python examples/skype_scaling.py

The paper's introduction observes that Skype carried conference payloads
over direct IP unicast from each speaker to every listener, which capped
the first release at 6 participants.  This example grows a conference
from 4 to 128 participants and compares, per speaking turn:

* the speaker's uplink fan-out under Skype-style full unicast,
* the maximum per-peer fan-out under a GroupCast spanning tree,

showing how the tree keeps every peer's load bounded while full unicast
scales linearly at the speaker.
"""

import numpy as np

from repro.baselines.client_server import skype_unicast_cost
from repro.deployment import build_deployment
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.dissemination import disseminate
from repro.groupcast.subscription import subscribe_members
from repro.sim.random import spawn_rng

SEED = 47
PEERS = 600


def main() -> None:
    print(f"Building a {PEERS}-peer GroupCast deployment ...\n")
    deployment = build_deployment(PEERS, kind="groupcast", seed=SEED)
    rng = spawn_rng(SEED, "example")
    ids = deployment.peer_ids()

    header = (f"{'participants':>13}{'skype uplink copies':>21}"
              f"{'tree max fanout':>17}{'tree delay ms':>15}"
              f"{'unicast delay ms':>18}")
    print(header)
    print("-" * len(header))

    for size in (4, 8, 16, 32, 64, 128):
        picks = rng.choice(len(ids), size=size, replace=False)
        members = [ids[int(i)] for i in picks]
        speaker = members[0]

        # Skype-style: the speaker unicasts to everyone directly.
        _, unicast_delay = skype_unicast_cost(
            deployment.underlay, speaker, members)

        # GroupCast: advertisement + reverse-path tree, payload flood.
        advertisement = propagate_advertisement(
            deployment.overlay, speaker, 1, "ssa",
            deployment.peer_distance_ms, rng,
            deployment.config.announcement, deployment.config.utility)
        tree, _ = subscribe_members(
            deployment.overlay, advertisement, members,
            deployment.peer_distance_ms, deployment.config.announcement)
        report = disseminate(tree, speaker, deployment.underlay)
        max_fanout = max(
            len(tree.children(node)) for node in tree.nodes())

        print(f"{size:>13d}{size - 1:>21d}{max_fanout:>17d}"
              f"{report.average_member_delay_ms:>15.1f}"
              f"{unicast_delay:>18.1f}")

    print("\nSkype's speaker uplink grows linearly with the conference;")
    print("the GroupCast tree bounds every peer's fan-out, trading a")
    print("modest delay penalty for one-to-two orders more scalability.")


if __name__ == "__main__":
    main()

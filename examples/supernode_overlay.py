"""Two-tier (supernode) GroupCast vs the flat overlay.

Run with::

    python examples/supernode_overlay.py

The paper's conclusion says GroupCast "can be easily adapted for
supernode or multi-layer overlay architectures".  This example builds
both variants over the same 600-peer population and compares one group's
delay and load profile: the two-tier core keeps trees shallow and pushes
all forwarding onto high-capacity supernodes, at the price of
concentrating load on them.
"""

import numpy as np

from repro.deployment import build_deployment
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.dissemination import disseminate
from repro.groupcast.subscription import subscribe_members
from repro.metrics.tree_metrics import aggregate_workloads, overload_index
from repro.overlay.supernode import (
    build_two_tier_group_tree,
    build_two_tier_overlay,
)
from repro.sim.random import spawn_rng

SEED = 59
PEERS = 600
MEMBERS = 80


def flat_tree(deployment, members, rng):
    rendezvous = members[0]
    advertisement = propagate_advertisement(
        deployment.overlay, rendezvous, 1, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, members,
        deployment.peer_distance_ms, deployment.config.announcement)
    return tree


def describe(name, tree, deployment):
    report = disseminate(tree, tree.root, deployment.underlay)
    capacities = {info.peer_id: info.capacity
                  for info in deployment.overlay.peers()}
    overload = overload_index(aggregate_workloads([tree]), capacities)
    print(f"{name:<12}{tree.height():>8d}{tree.node_stress():>13.2f}"
          f"{report.average_member_delay_ms:>15.1f}{overload:>12.3f}")


def main() -> None:
    print(f"Building a {PEERS}-peer deployment ...")
    deployment = build_deployment(PEERS, kind="groupcast", seed=SEED)
    infos = list(deployment.overlay.peers())
    rng = spawn_rng(SEED, "example")

    two_tier = build_two_tier_overlay(infos, spawn_rng(SEED, "two-tier"))
    print(f"  supernodes elected: {len(two_tier.supernodes)} "
          f"(capacity >= 100x), serving {two_tier.leaf_count} leaves")
    print(f"  core: {two_tier.core.edge_count} links, "
          f"connected={two_tier.core.is_connected()}")

    ids = deployment.peer_ids()
    members = [ids[int(i)]
               for i in rng.choice(len(ids), size=MEMBERS, replace=False)]

    flat = flat_tree(deployment, members, rng)
    tiered = build_two_tier_group_tree(
        two_tier, members, members[0], deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)

    print(f"\nOne group, {MEMBERS} members:\n")
    header = (f"{'overlay':<12}{'height':>8}{'node stress':>13}"
              f"{'avg delay ms':>15}{'overload':>12}")
    print(header)
    print("-" * len(header))
    describe("flat", flat, deployment)
    describe("two-tier", tiered, deployment)

    fanouts = [len(tiered.children(sn)) for sn in two_tier.supernodes
               if sn in tiered]
    print(f"\nSupernode fan-outs in the two-tier tree: "
          f"max {max(fanouts)}, mean {np.mean(fanouts):.1f} — the core")
    print("absorbs the forwarding work its capacity was elected for.")


if __name__ == "__main__":
    main()

"""End-system multicast shoot-out: GroupCast vs every baseline.

Run with::

    python examples/streaming_esm.py

Streams one payload to a 60-member group over four different
architectures and prints the efficiency comparison of Section 4.3:

* GroupCast (utility-aware overlay + SSA spanning tree),
* random power-law overlay (PLOD) + SSA,
* Narada-style mesh-first shortest-path tree,
* client/server star,

all against the IP-multicast lower bound.
"""

from repro.baselines.client_server import build_client_server_tree
from repro.baselines.narada import build_narada_tree
from repro.deployment import build_deployment
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.dissemination import disseminate
from repro.groupcast.subscription import subscribe_members
from repro.metrics.tree_metrics import link_stress, relative_delay_penalty
from repro.network.multicast import build_ip_multicast_tree
from repro.sim.random import spawn_rng

SEED = 31
PEERS = 800
MEMBERS = 60


def groupcast_tree(deployment, rendezvous, members, rng):
    advertisement = propagate_advertisement(
        deployment.overlay, rendezvous, 1, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, members,
        deployment.peer_distance_ms, deployment.config.announcement)
    return tree


def main() -> None:
    rng = spawn_rng(SEED, "example")
    print(f"Building {PEERS}-peer deployments (GroupCast + PLOD) ...")
    groupcast = build_deployment(PEERS, kind="groupcast", seed=SEED)
    plod = build_deployment(PEERS, kind="plod", seed=SEED)

    ids = groupcast.peer_ids()
    picks = rng.choice(len(ids), size=MEMBERS, replace=False)
    members = [ids[int(i)] for i in picks]
    source = members[0]

    trees = {
        "groupcast+ssa": groupcast_tree(groupcast, source, members, rng),
        "plod+ssa": groupcast_tree(plod, source, members, rng),
        "narada-mesh": build_narada_tree(
            groupcast.underlay, source, members, rng),
        "client/server": build_client_server_tree(source, members),
    }

    underlay = groupcast.underlay
    print(f"\nStreaming one payload from peer {source} to "
          f"{MEMBERS - 1} receivers:\n")
    header = (f"{'architecture':<16}{'RDP':>7}{'link stress':>13}"
              f"{'node stress':>13}{'tree height':>13}")
    print(header)
    print("-" * len(header))
    for name, tree in trees.items():
        report = disseminate(tree, source, underlay)
        receivers = [m for m in tree.members if m != source]
        ip_tree = build_ip_multicast_tree(underlay, source, receivers)
        print(f"{name:<16}"
              f"{relative_delay_penalty(report, ip_tree):>7.2f}"
              f"{link_stress(report, ip_tree):>13.2f}"
              f"{tree.node_stress():>13.2f}"
              f"{tree.height():>13d}")
    print("\nRDP = relative delay penalty (1.0 is the IP-multicast bound).")
    print("The client/server star has optimal two-hop delay but its root")
    print("forwards every copy - node stress equals the group size.")


if __name__ == "__main__":
    main()

"""Online conference under churn.

Run with::

    python examples/conference.py

Simulates the paper's motivating scenario: an ad-hoc online conference on
an overlay whose peers keep arriving and leaving.  Peers join with
exponential inter-arrival times, live exponentially distributed
lifetimes, and half of the departures are silent crashes that the
heartbeat maintenance daemon must detect and repair.  Once the population
stabilises, the first participant random-walks for a rendezvous point and
a conference group is established; every speaker then publishes a
"turn" through the spanning tree.
"""

import numpy as np

from repro.config import GroupCastConfig, OverlayConfig
from repro.coords.gnp import GNPSystem
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.dissemination import disseminate
from repro.groupcast.rendezvous import select_rendezvous
from repro.groupcast.subscription import subscribe_members
from repro.network.topology import generate_transit_stub
from repro.overlay.bootstrap import UtilityBootstrap
from repro.overlay.churn import ChurnConfig, ChurnProcess
from repro.overlay.graph import OverlayNetwork
from repro.overlay.hostcache import HostCacheServer
from repro.overlay.maintenance import MaintenanceDaemon
from repro.overlay.messages import MessageStats
from repro.sim.engine import Simulator
from repro.sim.random import spawn_rng

SEED = 23


def main() -> None:
    config = GroupCastConfig(seed=SEED)
    simulator = Simulator()
    underlay = generate_transit_stub(
        config.underlay, spawn_rng(SEED, "topology"))
    gnp = GNPSystem()
    gnp.fit_landmarks(underlay, spawn_rng(SEED, "landmarks"))
    space = gnp.make_space()

    overlay = OverlayNetwork()
    stats = MessageStats()
    host_cache = HostCacheServer(max_entries=512,
                                 dimensions=space.dimensions,
                                 rng=spawn_rng(SEED, "hostcache"))
    bootstrap = UtilityBootstrap(
        overlay=overlay, host_cache=host_cache,
        rng=spawn_rng(SEED, "protocol"), overlay_config=config.overlay,
        utility_config=config.utility, stats=stats)
    maintenance = MaintenanceDaemon(
        simulator=simulator, overlay=overlay, host_cache=host_cache,
        bootstrap=bootstrap, rng=spawn_rng(SEED, "maintenance"),
        config=OverlayConfig(heartbeat_interval_ms=2_000.0,
                             epoch_ms=10_000.0, min_epoch_ms=4_000.0,
                             max_epoch_ms=60_000.0),
        stats=stats)
    churn = ChurnProcess(
        simulator=simulator, underlay=underlay, gnp=gnp, space=space,
        bootstrap=bootstrap, maintenance=maintenance,
        rng=spawn_rng(SEED, "churn"),
        config=ChurnConfig(join_interarrival_ms=500.0,
                           mean_lifetime_ms=600_000.0,
                           crash_fraction=0.5, max_joins=300))

    print("Running churn: 300 arrivals, Expo(0.5s) inter-arrival, "
          "Expo(600s) lifetimes ...")
    churn.start()
    simulator.run(until=240_000.0)  # 4 simulated minutes

    alive = maintenance.alive_peers()
    print(f"  t={simulator.now / 1000:.0f}s: {len(alive)} peers alive, "
          f"{len(churn.departed)} departed, {len(churn.crashed)} crashed")
    print(f"  failures detected by heartbeats: "
          f"{len(maintenance.detected_failures)}, "
          f"epoch repairs: {len(maintenance.repairs)}")
    sizes = overlay.connected_component_sizes()
    print(f"  overlay: {overlay.peer_count} vertices, "
          f"largest component {sizes[0]}")

    # --- establish the conference ------------------------------------
    rng = spawn_rng(SEED, "conference")
    participants = [alive[int(i)]
                    for i in rng.choice(len(alive), size=min(30, len(alive)),
                                        replace=False)]
    initiator = participants[0]
    rendezvous = select_rendezvous(
        overlay, initiator, rng, config.rendezvous, stats)
    print(f"\nConference: initiator {initiator} random-walked to "
          f"rendezvous {rendezvous} "
          f"(capacity {overlay.peer(rendezvous).capacity:.0f}x)")

    advertisement = propagate_advertisement(
        overlay, rendezvous, 1, "ssa", underlay.peer_distance_ms,
        rng, config.announcement, config.utility, stats)
    tree, subscription = subscribe_members(
        overlay, advertisement, participants, underlay.peer_distance_ms,
        config.announcement, stats)
    print(f"  {len(tree.members)} participants on a tree of "
          f"{tree.node_count} nodes "
          f"(subscription success {subscription.success_rate:.0%})")

    # --- everyone speaks once -----------------------------------------
    delays = []
    for speaker in sorted(tree.members)[:10]:
        report = disseminate(tree, speaker, underlay, stats)
        delays.append(report.average_member_delay_ms)
    print(f"  10 speaking turns: mean delivery delay "
          f"{np.mean(delays):.1f} ms "
          f"(worst {np.max(delays):.1f} ms)")
    print(f"\nTotal protocol messages: {stats.total()}")


if __name__ == "__main__":
    main()

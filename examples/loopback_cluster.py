"""Multi-process loopback deployment of the live GroupCast runtime.

Spawns N worker processes, each hosting a share of the overlay's peers
on its own asyncio loop and UDP sockets — the same protocol node code
the simulator runs, deployed for real.  No process holds global state:

* Every worker derives the **identical** overlay from the shared seed
  (``build_deployment`` is deterministic), so local views agree without
  any exchange of topology.
* Peer ``p`` always binds ``base_port + p``; workers pre-publish the
  routes of the peers they do *not* host with ``add_route``, so
  cross-process frames need no discovery service.
* There is no start-up barrier: a frame sent before its recipient's
  process has bound is simply lost, and the transport's
  retransmit-until-ack layer rides out the race.

The episode: the rendezvous peer advertises the group (NSSA), members
scattered across all processes subscribe, one member publishes.  Each
worker then reports its hosted peers' tree state and deliveries back to
the parent, which prints the assembled global picture.

Run::

    PYTHONPATH=src python examples/loopback_cluster.py \
        --peers 24 --processes 3
"""

from __future__ import annotations

import argparse
import asyncio
import multiprocessing as mp
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.deployment import build_deployment  # noqa: E402
from repro.runtime import (  # noqa: E402
    AsyncioTransport,
    LocalView,
    PeerRuntime,
    RetryPolicy,
)
from repro.sim.random import spawn_rng  # noqa: E402

GROUP = 1
SEED = 7


async def _run_worker(rank: int, world: int, peers: int, base_port: int,
                      members: list[int], rendezvous: int, source: int,
                      settle_s: float, queue: mp.Queue) -> None:
    deployment = build_deployment(peers, kind="groupcast", seed=SEED)
    overlay = deployment.overlay
    transport = AsyncioTransport(
        policy=RetryPolicy(timeout_ms=100.0, backoff=2.0,
                           max_timeout_ms=1_000.0, max_retries=10),
        latency_fn=deployment.peer_distance_ms)
    await transport.start()

    hosted: dict[int, PeerRuntime] = {}
    for peer_id in overlay.peer_ids():
        if peer_id % world == rank:
            view = LocalView(
                overlay.peer(peer_id),
                [overlay.peer(n) for n in overlay.neighbors(peer_id)])
            runtime = PeerRuntime(
                view, transport, deployment.config.announcement,
                deployment.config.utility,
                spawn_rng(SEED, "runtime-peer", peer_id))
            hosted[peer_id] = runtime
            await transport.start_peer(peer_id, runtime.node.handle,
                                       port=base_port + peer_id)
        else:
            transport.add_route(peer_id, "127.0.0.1", base_port + peer_id)

    # Scripted episode; local quiescence + a grace sleep between phases
    # stands in for global coordination (this is a demo, not a test —
    # the conformance suite does the rigorous waiting).
    if rendezvous in hosted:
        hosted[rendezvous].node.start_advertisement(GROUP, "nssa")
    await transport.wait_quiescent(settle_s)
    await asyncio.sleep(0.5)

    for member in members:
        if member in hosted:
            hosted[member].node.start_subscription(GROUP)
    await transport.wait_quiescent(settle_s)
    await asyncio.sleep(0.5)

    if source in hosted:
        hosted[source].node.start_publish(GROUP, 1)
    await transport.wait_quiescent(settle_s)
    await asyncio.sleep(0.5)

    report = {
        "rank": rank,
        "hosted": sorted(hosted),
        "on_tree": sorted(
            pid for pid, rt in hosted.items()
            if rt.node.state(GROUP).on_tree),
        "edges": sorted(
            (pid, rt.node.state(GROUP).upstream)
            for pid, rt in hosted.items()
            if rt.node.state(GROUP).on_tree
            and rt.node.state(GROUP).upstream is not None),
        "delivered": sorted(
            pid for pid, rt in hosted.items()
            if pid in rt.deliveries.get((GROUP, 1), {})),
    }
    await transport.close()
    queue.put(report)


def _worker(rank: int, world: int, peers: int, base_port: int,
            members: list[int], rendezvous: int, source: int,
            settle_s: float, queue: mp.Queue) -> None:
    asyncio.run(_run_worker(rank, world, peers, base_port, members,
                            rendezvous, source, settle_s, queue))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Multi-process UDP loopback GroupCast deployment.")
    parser.add_argument("--peers", type=int, default=24)
    parser.add_argument("--processes", type=int, default=3)
    parser.add_argument("--members", type=int, default=8)
    parser.add_argument("--base-port", type=int, default=19_000)
    parser.add_argument("--settle", type=float, default=10.0)
    args = parser.parse_args(argv)

    deployment = build_deployment(args.peers, kind="groupcast", seed=SEED)
    ids = deployment.peer_ids()
    members = ids[: args.members]
    rendezvous, source = members[0], members[-1]
    print(f"{args.peers} peers across {args.processes} processes; "
          f"group {GROUP} rendezvous={rendezvous} members={members}")

    ctx = mp.get_context("spawn")
    queue: mp.Queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_worker,
            args=(rank, args.processes, args.peers, args.base_port,
                  members, rendezvous, source, args.settle, queue))
        for rank in range(args.processes)]
    for worker in workers:
        worker.start()
    reports = [queue.get(timeout=120) for _ in workers]
    for worker in workers:
        worker.join(timeout=30)

    on_tree = sorted(p for r in reports for p in r["on_tree"])
    edges = sorted(tuple(e) for r in reports for e in r["edges"])
    delivered = sorted(p for r in reports for p in r["delivered"])
    for report in sorted(reports, key=lambda r: r["rank"]):
        print(f"  rank {report['rank']}: hosts {report['hosted']}")
    print(f"on tree   : {on_tree}")
    print(f"tree edges: {edges}")
    print(f"delivered : {delivered}")
    missing = [m for m in members if m not in delivered]
    if missing:
        print(f"MISSING deliveries at members: {missing}")
        return 1
    print("every member received the payload across process boundaries")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""One-screen operator console for a live GroupCast cluster.

Brings up the 10-peer loopback cluster of the live experiment, runs
the advertise → subscribe → publish episode, then polls every peer
over the wire with the OPS introspection vocabulary
(:meth:`~repro.runtime.cluster.RuntimeCluster.ops_survey`) and renders
the replies as a status table — upstream, tree membership, children,
in-flight ARQ window, incarnation and the stalest neighbor contact —
the view an operator would watch to spot a wedged branch.  A crash is
injected between polls so the table visibly degrades (the crashed peer
drops out, its downstream member goes off-tree) and then recovers
after the rejoin.

Below each survey the console renders the per-tenant SLO attainment
table (worst offenders first) from a record-action
:class:`~repro.obs.slo.SLOEngine` riding the live telemetry pump; pass
``--no-slo`` — or run without the obs.slo stack installed — and the
console degrades gracefully to the survey table alone.

Run::

    PYTHONPATH=src python examples/ops_console.py --polls 3
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.live_run import (  # noqa: E402
    GROUP,
    MEMBERS,
    RENDEZVOUS,
    build_overlay,
    latency_ms,
)
from repro.experiments.live_run import ANNOUNCEMENT, DEFAULT_SEED  # noqa: E402
from repro.runtime import RuntimeCluster  # noqa: E402

try:  # The SLO engine is optional: the console degrades to the plain
    # survey table when the obs.slo stack is unavailable.
    from repro.obs import LiveTelemetry, SLOEngine, SLOSpec  # noqa: E402
except ImportError:  # pragma: no cover - degraded deployments only
    LiveTelemetry = SLOEngine = SLOSpec = None

COLUMNS = ("peer", "inc", "up", "tree", "member", "children",
           "unacked", "stalest ms")

SLO_COLUMNS = ("tenant", "burn", "delivery", "members", "orphans",
               "attained")


def render_attainment(engine) -> str:
    """Per-tenant SLO attainment, worst offenders first.

    Returns a one-line note instead of a table when the SLO engine is
    absent or has not observed a snapshot yet, so the console renders
    usefully in degraded deployments.
    """
    if engine is None:
        return "(slo engine unavailable — attainment column skipped)"
    states = engine.tenant_states()
    if not states:
        return "(no per-tenant slo state observed yet)"
    spec = engine.spec
    rows = []
    for state in states:
        attained = (state["burn"] < spec.burn_threshold
                    and state["delivery_ratio"]
                    >= spec.min_delivery_ratio)
        rows.append((
            str(state["tenant"]),
            f"{state['burn']:.2f}",
            f"{state['delivery_ratio']:.3f}",
            str(state["members"]),
            str(state["orphans"]),
            "yes" if attained else "NO",
        ))
    widths = [max(len(SLO_COLUMNS[i]),
                  max((len(r[i]) for r in rows), default=0))
              for i in range(len(SLO_COLUMNS))]
    header = "  ".join(c.rjust(widths[i])
                       for i, c in enumerate(SLO_COLUMNS))
    rule = "  ".join("-" * w for w in widths)
    body = ["  ".join(r[i].rjust(widths[i]) for i in range(len(r)))
            for r in rows]
    return "\n".join([header, rule, *body])


def render(survey, group_id: int) -> str:
    """The survey as one aligned status screen."""
    rows = []
    for peer_id, reply in survey.items():
        row = reply.group_row(group_id)
        stalest = max((age for _, age in reply.last_seen), default=0.0)
        rows.append((
            str(peer_id),
            str(reply.incarnation),
            "-" if row is None or row[1] < 0 else str(row[1]),
            "yes" if row is not None and row[2] else "no",
            "yes" if row is not None and row[3] else "no",
            "0" if row is None else str(row[4]),
            str(reply.unacked),
            f"{stalest:.0f}",
        ))
    widths = [max(len(COLUMNS[i]), max((len(r[i]) for r in rows),
                                       default=0))
              for i in range(len(COLUMNS))]
    header = "  ".join(c.rjust(widths[i])
                       for i, c in enumerate(COLUMNS))
    rule = "  ".join("-" * w for w in widths)
    body = ["  ".join(r[i].rjust(widths[i]) for i in range(len(r)))
            for r in rows]
    return "\n".join([header, rule, *body])


async def console(polls: int, settle_s: float,
                  slo: bool = True) -> int:
    cluster = RuntimeCluster(
        overlay=build_overlay(), seed=DEFAULT_SEED,
        announcement=ANNOUNCEMENT, latency_fn=latency_ms)
    engine = live = None
    if slo and SLOEngine is not None:
        # Record-action burn watchdogs over a 2-snapshot window: the
        # crash shows up as burn within one poll.  The telemetry pump
        # is driven manually (poll per survey) instead of started.
        engine = SLOEngine(SLOSpec(min_delivery_ratio=0.99, window=2))
        live = LiveTelemetry(cluster, slo=engine)
    async with cluster:
        cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
        await cluster.settle(settle_s)
        cluster.subscribe(GROUP, MEMBERS)
        await cluster.settle(settle_s)
        cluster.publish(GROUP, 9)
        await cluster.settle(settle_s)

        def observe() -> None:
            if live is not None:
                live.poll()

        print(f"established group {GROUP}: rendezvous {RENDEZVOUS}, "
              f"members {sorted(MEMBERS)}\n")
        survey = await cluster.ops_survey()
        observe()
        print("poll 1 — healthy cluster")
        print(render(survey, GROUP))
        print(render_attainment(engine))

        await cluster.crash(7)
        cluster.rejoin(GROUP, 9)
        survey = await cluster.ops_survey()
        observe()
        print("\npoll 2 — peer 7 crashed, member 9 repairing")
        print(render(survey, GROUP))
        print(render_attainment(engine))

        await cluster.wait_until(
            lambda: 9 in cluster.members_on_tree(GROUP), settle_s)
        await cluster.settle(settle_s)
        for extra in range(3, polls + 1):
            survey = await cluster.ops_survey()
            observe()
            print(f"\npoll {extra} — after repair")
            print(render(survey, GROUP))
            print(render_attainment(engine))

        healthy = cluster.members_on_tree(GROUP)
        expected = set(MEMBERS) - {7}
        if not expected <= healthy:
            print(f"\nmembers still off-tree: {sorted(expected - healthy)}")
            return 1
    print("\nall surviving members back on the tree")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Poll a live cluster's OPS endpoints and render "
                    "a status table.")
    parser.add_argument("--polls", type=int, default=3,
                        help="total survey polls (>= 2)")
    parser.add_argument("--settle", type=float, default=5.0)
    parser.add_argument("--no-slo", action="store_true",
                        help="skip the per-tenant SLO attainment table")
    args = parser.parse_args(argv)
    return asyncio.run(console(max(2, args.polls), args.settle,
                               slo=not args.no_slo))


if __name__ == "__main__":
    sys.exit(main())

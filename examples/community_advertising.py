"""Online community-based advertising over GroupCast.

Run with::

    python examples/community_advertising.py

One of the motivating applications of the paper's introduction: an
advertiser injects content into many overlapping interest communities.
Each community is a GroupCast group whose rendezvous point is the
advertiser's donated high-capacity server; peers belong to several
communities at once.  The example measures per-community delivery and
the aggregate load picture — including how the utility-aware stack keeps
the (weak) majority of peers out of the forwarding hot path.
"""

import numpy as np

from repro import GroupCastMiddleware
from repro.metrics.tree_metrics import aggregate_workloads, overload_index

SEED = 71
PEERS = 800
COMMUNITIES = 8
COMMUNITY_SIZE = 90


def main() -> None:
    print(f"Building a {PEERS}-peer GroupCast deployment ...")
    middleware = GroupCastMiddleware.build(peer_count=PEERS, seed=SEED)
    deployment = middleware.deployment

    # The advertiser donates the most capable peer as rendezvous server.
    advertiser = max(deployment.overlay.peers(),
                     key=lambda info: info.capacity).peer_id
    capacity = deployment.peer_info(advertiser).capacity
    print(f"  advertiser server: peer {advertiser} "
          f"(capacity {capacity:.0f}x)\n")

    groups = []
    print(f"{'community':<12}{'members':>9}{'tree nodes':>12}"
          f"{'recv rate':>11}{'avg delay ms':>14}")
    for index in range(COMMUNITIES):
        members = middleware.sample_members(COMMUNITY_SIZE)
        group = middleware.create_group(members, rendezvous=advertiser)
        report = middleware.publish(group.group_id, advertiser)
        groups.append(group)
        print(f"community-{index:<2}{len(group.members):>9d}"
              f"{group.tree.node_count:>12d}"
              f"{group.advertisement.receiving_rate(PEERS):>11.2f}"
              f"{report.average_member_delay_ms:>14.1f}")

    # Aggregate load across all communities.
    trees = [group.tree for group in groups]
    workloads = aggregate_workloads(trees)
    capacities = {info.peer_id: info.capacity
                  for info in deployment.overlay.peers()}
    index = overload_index(workloads, capacities)

    weak_loads = [load for peer, load in workloads.items()
                  if capacities[peer] <= 10.0]
    strong_loads = [load for peer, load in workloads.items()
                    if capacities[peer] >= 100.0]
    membership = {}
    for group in groups:
        for member in group.members:
            membership[member] = membership.get(member, 0) + 1
    multi = sum(1 for count in membership.values() if count > 1)

    print(f"\n{multi} peers belong to 2+ communities "
          f"(overlapping interest sets).")
    print(f"Aggregate forwarding load: overload index {index:.3f}")
    print(f"  mean fan-out carried by weak peers (<=10x): "
          f"{np.mean(weak_loads):.2f}")
    print(f"  mean fan-out carried by strong peers (>=100x): "
          f"{np.mean(strong_loads):.2f}")
    print("The capacity-aware utility keeps heavy forwarding on peers")
    print("that declared the bandwidth for it.")


if __name__ == "__main__":
    main()

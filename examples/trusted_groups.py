"""Trust-aware group communication with free-riders in the population.

Run with::

    python examples/trusted_groups.py

10 % of the peers are free-riders: they join groups and accept tree
children but silently drop every payload they should forward.  The
example runs rounds of group communication twice — once trust-blind,
once with SSA forwarding weighted by a TrustGuard-style reputation
ledger — and shows the quarantine converging: delivery recovers and the
ledger's suspect list pinpoints the actual free-riders.
"""

import numpy as np

from repro.deployment import build_deployment
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.subscription import subscribe_members
from repro.sim.random import spawn_rng
from repro.trust.dissemination import disseminate_with_failures
from repro.trust.reputation import ReputationLedger, TrustConfig

SEED = 83
PEERS = 500
ROUNDS = 8
GROUPS_PER_ROUND = 3
MEMBERS = 80


def run_round(deployment, ledger, free_riders, rng, trust_fn):
    ids = deployment.peer_ids()
    ratios = []
    for _ in range(GROUPS_PER_ROUND):
        picks = rng.choice(len(ids), size=MEMBERS, replace=False)
        members = [ids[int(i)] for i in picks]
        rendezvous = members[0]
        while rendezvous in free_riders:
            rendezvous = ids[int(rng.integers(len(ids)))]
        advertisement = propagate_advertisement(
            deployment.overlay, rendezvous, 0, "ssa",
            deployment.peer_distance_ms, rng,
            deployment.config.announcement, deployment.config.utility,
            trust_fn=trust_fn)
        tree, _ = subscribe_members(
            deployment.overlay, advertisement, members,
            deployment.peer_distance_ms, deployment.config.announcement)
        report = disseminate_with_failures(
            tree, rendezvous, deployment.underlay, rng,
            free_riders=free_riders, drop_probability=1.0, ledger=ledger)
        ratios.append(report.delivery_ratio)
    return float(np.mean(ratios))


def main() -> None:
    print(f"Building a {PEERS}-peer GroupCast deployment ...")
    deployment = build_deployment(PEERS, kind="groupcast", seed=SEED)
    rng = spawn_rng(SEED, "example")
    ids = deployment.peer_ids()
    picks = rng.choice(len(ids), size=PEERS // 10, replace=False)
    free_riders = {ids[int(i)] for i in picks}
    print(f"  {len(free_riders)} free-riders planted (drop all payloads)\n")

    ledger = ReputationLedger(TrustConfig(ewma_alpha=0.5))
    blind_ledger = ReputationLedger()
    print(f"{'round':<7}{'trust-aware delivery':>22}"
          f"{'trust-blind delivery':>22}")
    for round_index in range(ROUNDS):
        aware = run_round(deployment, ledger, free_riders, rng,
                          ledger.quarantine_fn(threshold=0.3))
        blind = run_round(deployment, blind_ledger, free_riders, rng,
                          trust_fn=None)
        print(f"{round_index:<7d}{aware:>22.2f}{blind:>22.2f}")

    suspects = ledger.suspects(threshold=0.3)
    true_positives = len(suspects & free_riders)
    print(f"\nSuspects after {ROUNDS} rounds: {len(suspects)} "
          f"({true_positives} true free-riders, "
          f"{len(suspects) - true_positives} false accusations)")
    print("Trust-weighted SSA keeps announcements - and therefore")
    print("spanning trees - away from peers that drop payloads.")


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs (``bdist_wheel``) are unavailable; keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
